//! Versioned on-disk snapshots: cold-start a serving index in
//! milliseconds instead of rebuilding it.
//!
//! A snapshot persists a [`ShardedIndex`](crate::ShardedIndex) (and
//! optionally the [`ShardedTopKIndex`](crate::ShardedTopKIndex) built
//! over the same data) as one self-describing little-endian file:
//!
//! * a fixed 64-byte header (magic, format version, endian canary,
//!   CRC-protected offsets — see [`mod@format`]);
//! * a param block pinning every scalar the builder would otherwise
//!   derive — family parameters, table/hash widths, HLL config, lazy
//!   threshold, the (possibly timing-calibrated) cost model, the shard
//!   assignment and radius schedule — plus the sampled g-functions
//!   verbatim (stored **once** in v2; shards carry byte-identical
//!   g-functions by the shared-randomness invariant — see the private
//!   `params` module and [`codec`]);
//! * one CRC-checksummed section per flat array of every shard: owner
//!   lists, point data, and the seven CSR arrays of each frozen bucket
//!   store. In the current (v2) format each section carries a
//!   [`SectionEncoding`](format::SectionEncoding): monotone arrays go
//!   down as delta varints, small-valued arrays as plain varints, and
//!   everything else stays raw and aligned so the mmap path can borrow
//!   it zero-copy (see [`mod@encode`]).
//!
//! Two load paths share one [`source::SnapshotSource`] abstraction:
//! buffered reads into owned arrays ([`LoadMode::Read`]), and zero-copy
//! `mmap` where raw sections are borrowed straight from the mapping
//! ([`LoadMode::Mmap`]) so the OS pages data in lazily and cold start
//! is bounded by metadata parsing plus encoded-section decode, not
//! index size. [`LoadMode::Auto`] picks between them per file and host:
//! a cached-or-probed [`StorageProfile`] feeds the pure [`plan_load`]
//! planner, which weighs one buffered forward pass against demand
//! paging (optionally warmed by `madvise` readahead — see [`mod@plan`]).
//!
//! **Determinism contract:** queries against a loaded snapshot are
//! byte-identical to queries against the index that wrote it — both
//! load paths, any shard count. This holds because nothing is
//! re-sampled or re-derived at load time: g-functions, sketch slabs,
//! cost model and owner lists round-trip verbatim.
//!
//! ```no_run
//! use hlsh_core::snapshot::{load_snapshot, save_snapshot, LoadMode};
//! use hlsh_core::{IndexBuilder, ShardAssignment, ShardedIndex};
//! use hlsh_families::PStableL2;
//! use hlsh_vec::{DenseDataset, L2};
//! use std::path::Path;
//!
//! let mut data = DenseDataset::new(64);
//! data.push(&[0.0; 64]); // ... the real corpus
//! let index = ShardedIndex::build_frozen(
//!     data,
//!     ShardAssignment::new(7, 2),
//!     IndexBuilder::new(PStableL2::new(64, 4.0), L2).tables(10).hash_len(6).seed(1),
//! );
//! save_snapshot(Path::new("index.hlsh"), &index, None)?;
//! // Later (e.g. a fresh server process): milliseconds, not minutes.
//! let loaded = load_snapshot::<PStableL2, L2>(Path::new("index.hlsh"), LoadMode::Mmap)?;
//! assert_eq!(loaded.rnnr.len(), loaded.manifest.n);
//! # Ok::<(), hlsh_core::snapshot::SnapshotError>(())
//! ```

pub mod codec;
pub mod encode;
pub mod format;
mod load;
pub mod mmap;
mod params;
pub mod plan;
pub mod profile;
mod save;
pub mod source;

pub use codec::{SnapshotDistance, SnapshotFamily};
pub use load::{
    load_snapshot, read_layout, read_manifest, LoadedSnapshot, SectionInfo, SnapshotLayout,
};
pub use plan::{plan_load, LayoutStats, LoadPlan, PlannedBackend};
pub use profile::StorageProfile;
pub use save::{save_snapshot, save_snapshot_v1, SaveStats};

/// Sanity caps on decoded parameters, so a corrupt or adversarial file
/// cannot drive huge allocations before section CRCs are checked.
pub(crate) const MAX_DIM: usize = 1 << 24;
/// Cap on the hash width `k`.
pub(crate) const MAX_K: usize = 4096;
/// Cap on tables per index.
pub(crate) const MAX_TABLES: usize = 1 << 20;
/// Cap on shard count.
pub(crate) const MAX_SHARDS: usize = 4096;
/// Cap on top-k schedule levels.
pub(crate) const MAX_LEVELS: usize = 64;

/// How [`load_snapshot`] materialises sections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadMode {
    /// Buffered reads into owned arrays; every section's CRC is
    /// verified and the file is consumed in one forward pass (sections
    /// staged in offset order). Works on any host, fastest steady-state
    /// queries on machines where touching a mapping is expensive.
    Read,
    /// Zero-copy `mmap`: raw sections borrow the mapping and the OS
    /// pages them in on first touch. Raw-section CRCs are **skipped**
    /// so the lazy cold start is preserved; header, params, directory
    /// and encoded sections are still fully verified.
    Mmap,
    /// `mmap` with per-section CRC verification — pays a full read of
    /// the file at load, keeps the shared-memory residency benefits.
    MmapVerify,
    /// Let the load planner choose: a cheap preamble pass collects the
    /// file's layout statistics, the storage medium's profile is read
    /// from its sidecar (or probed and cached), and
    /// [`plan_load`] picks buffered reads, a lazy mapping, or a mapping
    /// warmed with `madvise` readahead. The resolved plan is reported
    /// in [`LoadedSnapshot::plan`].
    Auto,
}

impl std::str::FromStr for LoadMode {
    type Err = &'static str;

    /// Parses the CLI spelling: `read`, `mmap`, `mmap-verify` or
    /// `auto`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "read" => Ok(LoadMode::Read),
            "mmap" => Ok(LoadMode::Mmap),
            "mmap-verify" => Ok(LoadMode::MmapVerify),
            "auto" => Ok(LoadMode::Auto),
            _ => Err("expected one of: read, mmap, mmap-verify, auto"),
        }
    }
}

/// Scalar parameters a snapshot declares, readable without the index's
/// family/distance types via [`read_manifest`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotManifest {
    /// [`SnapshotFamily::TAG`] of the family the file was written for.
    pub family_tag: u8,
    /// [`SnapshotDistance::TAG`] of the metric the file was written for.
    pub distance_tag: u8,
    /// Total indexed points.
    pub n: usize,
    /// Dimensionality of every point.
    pub dim: usize,
    /// Shard-assignment seed.
    pub seed: u64,
    /// Shard count.
    pub shards: usize,
    /// Hash tables per radius-index shard.
    pub tables: usize,
    /// Hash width `k` of the radius index.
    pub k: usize,
    /// The top-k radius schedule, when a ladder was snapshotted.
    pub topk: Option<TopKManifest>,
}

/// The top-k schedule as declared by a snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopKManifest {
    /// Smallest schedule radius.
    pub base: f64,
    /// Geometric growth factor.
    pub ratio: f64,
    /// Number of levels.
    pub levels: usize,
}

/// Why a snapshot could not be written or read. Decoding is total:
/// every malformed input maps here, never to a panic.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file uses a format version this build does not understand.
    BadVersion(u32),
    /// The endianness canary decoded wrong — the file bytes are not
    /// little-endian as written, or are corrupt.
    BadEndian,
    /// The file ended before a declared structure.
    Truncated,
    /// A CRC-protected region (named) failed verification.
    ChecksumMismatch(&'static str),
    /// A structural invariant (named) does not hold.
    Malformed(&'static str),
    /// The file was written for a different LSH family.
    FamilyMismatch {
        /// The tag of the family the loader was instantiated for.
        expected: u8,
        /// The tag the file declares.
        found: u8,
    },
    /// The file was written for a different distance function.
    DistanceMismatch {
        /// The tag of the metric the loader was instantiated for.
        expected: u8,
        /// The tag the file declares.
        found: u8,
    },
    /// Save-side cross-check failure: the indexes handed to
    /// [`save_snapshot`] disagree with each other.
    Inconsistent(&'static str),
    /// The zero-copy path is not available on this host; retry with
    /// [`LoadMode::Read`].
    MmapUnavailable(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot i/o error: {e}"),
            Self::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported snapshot format version {v}"),
            Self::BadEndian => write!(f, "snapshot endianness canary mismatch"),
            Self::Truncated => write!(f, "snapshot file is truncated"),
            Self::ChecksumMismatch(what) => write!(f, "snapshot checksum mismatch in {what}"),
            Self::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            Self::FamilyMismatch { expected, found } => {
                write!(f, "snapshot family tag {found} does not match expected {expected}")
            }
            Self::DistanceMismatch { expected, found } => {
                write!(f, "snapshot distance tag {found} does not match expected {expected}")
            }
            Self::Inconsistent(what) => write!(f, "indexes disagree, refusing to save: {what}"),
            Self::MmapUnavailable(why) => write!(f, "mmap load unavailable: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}
