//! The v2 section codecs: LEB128 varints and delta-varints, hand-rolled
//! with no dependencies.
//!
//! Two codecs cover the arrays that dominate a v1 snapshot's size:
//!
//! * [`SectionEncoding::Varint`] — one LEB128 varint per element.
//!   Wins on small-valued arrays (bucket member ids, owner lists),
//!   where most `u32` values fit in one or two bytes.
//! * [`SectionEncoding::DeltaVarint`] — the first element as a varint,
//!   then the (non-negative) difference between consecutive elements.
//!   Wins on monotone arrays (CSR offsets, prefix tables, sketch rank
//!   tables), whose deltas are tiny even when the values are not.
//!
//! [`plan`] picks the cheapest encoding per section with a hysteresis
//! margin, so sections that barely compress (e.g. the 64-bit hash-key
//! arrays) stay [`Raw`](SectionEncoding::Raw) and keep the zero-copy
//! mmap path. Decoding is **total**: truncation mid-varint, overlong or
//! overflowing varints, out-of-range elements, delta overflow and
//! trailing bytes all map to typed [`SnapshotError`]s, and the output
//! allocation is bounded by the directory's `raw_len / elem_size <=
//! enc_len` invariant — a corrupt file can never demand more memory
//! than its own size.

use super::format::SectionEncoding;
use super::source::Pod;
use super::SnapshotError;

/// Longest legal encoding of a `u64` (9 × 7 payload bits + 1).
pub const MAX_VARINT_LEN: usize = 10;

/// Number of bytes [`push_varint`] emits for `v`.
pub fn varint_len(v: u64) -> usize {
    // ceil(bits / 7), with 1 byte minimum for zero.
    (64 - v.leading_zeros()).div_ceil(7).max(1) as usize
}

/// Appends the LEB128 encoding of `v` to `out`: 7 payload bits per
/// byte, least-significant group first, high bit set on every byte but
/// the last.
pub fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// A bounds-checked LEB128 reader over an encoded payload.
#[derive(Debug)]
pub struct VarintReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> VarintReader<'a> {
    /// A reader over the whole payload.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Decodes one varint. Truncation mid-varint, encodings longer than
    /// [`MAX_VARINT_LEN`] and values overflowing 64 bits are all typed
    /// errors.
    pub fn read(&mut self) -> Result<u64, SnapshotError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = *self.bytes.get(self.pos).ok_or(SnapshotError::Truncated)?;
            self.pos += 1;
            if shift == 63 && (b & 0x7F) > 1 {
                return Err(SnapshotError::Malformed("varint overflows 64 bits"));
            }
            v |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(SnapshotError::Malformed("varint longer than 10 bytes"));
            }
        }
    }
}

/// Picks the cheapest on-disk encoding for a section, returning it with
/// the resulting payload length in bytes.
///
/// Encodings are only considered when they beat raw by more than 1/16
/// (6.25%): a section that barely compresses is worth more as a
/// zero-copy mmap view than as a few saved kilobytes. `f32` and `u8`
/// sections are always raw ([`Pod::to_u64`] is `None` for them), and
/// [`SectionEncoding::DeltaVarint`] is only considered for
/// non-decreasing sequences (deltas are unsigned).
pub fn plan<T: Pod>(elems: &[T]) -> (SectionEncoding, u64) {
    let raw_len = (elems.len() * T::SIZE) as u64;
    let Some(first) = elems.first().and_then(|e| e.to_u64()) else {
        return (SectionEncoding::Raw, raw_len);
    };
    let mut varint_total = 0u64;
    let mut delta_total = varint_len(first) as u64;
    let mut monotone = true;
    let mut prev = first;
    for (i, e) in elems.iter().enumerate() {
        let v = e.to_u64().expect("integer sections are uniformly typed");
        varint_total += varint_len(v) as u64;
        if i > 0 {
            if v < prev {
                monotone = false;
            } else if monotone {
                delta_total += varint_len(v - prev) as u64;
            }
        }
        prev = v;
    }
    let mut best = (SectionEncoding::Raw, raw_len);
    // Hysteresis: encoded only if enc * 16 <= raw * 15.
    let beats_raw = |enc: u64| enc.saturating_mul(16) <= raw_len.saturating_mul(15);
    if beats_raw(varint_total) && varint_total < best.1 {
        best = (SectionEncoding::Varint, varint_total);
    }
    if monotone && beats_raw(delta_total) && delta_total < best.1 {
        best = (SectionEncoding::DeltaVarint, delta_total);
    }
    if monotone {
        let (_, ef_total) = elias_fano_params(elems.len() as u64, prev);
        // `ef_total >= n` keeps the directory's anti-OOM invariant
        // (every element costs at least one encoded byte) intact.
        if ef_total >= elems.len() as u64 && beats_raw(ef_total) && ef_total < best.1 {
            best = (SectionEncoding::EliasFano, ef_total);
        }
    }
    best
}

/// Elias-Fano shape for `n` non-decreasing elements ending at `last`:
/// the low-bit width `l` and the exact encoded payload length in bytes.
///
/// The payload is `1` byte of `l`, then `ceil(n·l / 8)` bytes holding
/// each element's low `l` bits as an LSB-first bitstream, then
/// `ceil((n + (last >> l)) / 8)` bytes of high-bit bitmap with bit
/// `(v_i >> l) + i` set for element `i` (the last element's bit is the
/// bitmap's final bit).
pub fn elias_fano_params(n: u64, last: u64) -> (u32, u64) {
    debug_assert!(n > 0);
    let ratio = last / n;
    let l = if ratio >= 1 { 63 - ratio.leading_zeros() } else { 0 };
    let low_bytes = (n * l as u64).div_ceil(8);
    let high_bits = n + (last >> l);
    (l, 1 + low_bytes + high_bits.div_ceil(8))
}

/// One-shot Elias-Fano encoding of a non-empty, non-decreasing integer
/// section (the planner only picks the codec for such sections).
pub fn encode_elias_fano<T: Pod>(elems: &[T]) -> Vec<u8> {
    let to = |e: &T| e.to_u64().expect("encoded sections have integer elements");
    let n = elems.len() as u64;
    let last = to(elems.last().expect("elias-fano sections are non-empty"));
    let (l, enc_len) = elias_fano_params(n, last);
    let mut out = vec![0u8; enc_len as usize];
    out[0] = l as u8;
    let low_bytes = (n * l as u64).div_ceil(8) as usize;
    let (low, high) = out[1..].split_at_mut(low_bytes);

    let mask = if l == 0 { 0 } else { (1u64 << l) - 1 };
    let mut acc: u128 = 0;
    let mut bits = 0usize;
    let mut li = 0usize;
    for (i, e) in elems.iter().enumerate() {
        let v = to(e);
        debug_assert!(i == 0 || v >= to(&elems[i - 1]), "elias-fano input must be non-decreasing");
        if l > 0 {
            acc |= ((v & mask) as u128) << bits;
            bits += l as usize;
            while bits >= 8 {
                low[li] = acc as u8;
                acc >>= 8;
                li += 1;
                bits -= 8;
            }
        }
        let h = (v >> l) + i as u64;
        high[(h / 8) as usize] |= 1 << (h % 8);
    }
    if bits > 0 {
        low[li] = acc as u8;
    }
    out
}

/// Decodes a complete Elias-Fano payload into exactly `count` elements.
/// Total: a truncated low or high region, stray high bits beyond the
/// `count`-th element, a high value overflowing 64 bits after the shift,
/// out-of-range elements and trailing bytes are all typed errors.
pub fn decode_elias_fano<T: Pod>(bytes: &[u8], count: usize) -> Result<Vec<T>, SnapshotError> {
    let l = *bytes.first().ok_or(SnapshotError::Truncated)? as u32;
    if l > 63 {
        return Err(SnapshotError::Malformed("elias-fano low width exceeds 63 bits"));
    }
    let low_bytes = (count as u64 * l as u64).div_ceil(8);
    if (bytes.len() as u64) < 1 + low_bytes {
        return Err(SnapshotError::Truncated);
    }
    let (low, high) = bytes[1..].split_at(low_bytes as usize);

    let mask = if l == 0 { 0u64 } else { (1u64 << l) - 1 };
    let mut lows = Vec::with_capacity(count);
    let mut acc: u128 = 0;
    let mut bits = 0usize;
    let mut li = 0usize;
    for _ in 0..count {
        while bits < l as usize {
            acc |= (low[li] as u128) << bits;
            li += 1;
            bits += 8;
        }
        lows.push(acc as u64 & mask);
        acc >>= l;
        bits -= l as usize;
    }

    let mut out = Vec::with_capacity(count);
    let mut idx = 0usize;
    let mut last_bit = 0u64;
    for (byte_i, &byte) in high.iter().enumerate() {
        let mut b = byte;
        while b != 0 {
            let p = byte_i as u64 * 8 + b.trailing_zeros() as u64;
            b &= b - 1;
            if idx == count {
                return Err(SnapshotError::Malformed("elias-fano high bits past the last element"));
            }
            let h = p - idx as u64;
            if l > 0 && h > (u64::MAX >> l) {
                return Err(SnapshotError::Malformed("elias-fano element overflows 64 bits"));
            }
            let value = (h << l) | lows[idx];
            out.push(
                T::from_u64(value)
                    .ok_or(SnapshotError::Malformed("encoded element out of range for its type"))?,
            );
            last_bit = p;
            idx += 1;
        }
    }
    if idx != count {
        return Err(SnapshotError::Truncated);
    }
    // Exact consumption: the last set bit must land in the final byte,
    // so a payload with appended bytes never decodes.
    if last_bit / 8 + 1 != high.len() as u64 {
        return Err(SnapshotError::Malformed("trailing bytes in encoded section"));
    }
    Ok(out)
}

/// Streaming encoder for one section: feed element chunks in order, get
/// encoded bytes out. Chunked so the writer never buffers a whole
/// section's encoding (state carries across chunk boundaries).
/// Varint codecs only — Elias-Fano needs the whole section at once
/// ([`encode_elias_fano`]).
#[derive(Debug)]
pub struct SectionEncoder {
    encoding: SectionEncoding,
    prev: u64,
    started: bool,
}

impl SectionEncoder {
    /// An encoder for one section. `encoding` must be a varint codec
    /// (raw sections stream through the plain little-endian path;
    /// Elias-Fano encodes whole sections via [`encode_elias_fano`]).
    pub fn new(encoding: SectionEncoding) -> Self {
        debug_assert!(matches!(encoding, SectionEncoding::Varint | SectionEncoding::DeltaVarint));
        Self { encoding, prev: 0, started: false }
    }

    /// Appends the encoding of `elems` (the next chunk of the section)
    /// to `out`.
    pub fn extend<T: Pod>(&mut self, elems: &[T], out: &mut Vec<u8>) {
        for e in elems {
            let v = e.to_u64().expect("encoded sections have integer elements");
            match self.encoding {
                SectionEncoding::Varint => push_varint(out, v),
                SectionEncoding::DeltaVarint => {
                    if self.started {
                        push_varint(out, v - self.prev);
                    } else {
                        push_varint(out, v);
                    }
                    self.prev = v;
                }
                SectionEncoding::Raw | SectionEncoding::EliasFano => {
                    unreachable!("checked in new")
                }
            }
            self.started = true;
        }
    }
}

/// One-shot encoding of a whole section (tests and small callers; the
/// writer streams through [`SectionEncoder`] instead).
pub fn encode_section<T: Pod>(elems: &[T], encoding: SectionEncoding) -> Vec<u8> {
    if encoding == SectionEncoding::EliasFano {
        return encode_elias_fano(elems);
    }
    let mut out = Vec::new();
    let mut enc = SectionEncoder::new(encoding);
    enc.extend(elems, &mut out);
    out
}

/// Decodes a complete encoded payload into exactly `count` owned
/// elements.
///
/// Total: every malformed payload — truncated mid-varint, elements out
/// of the target type's range, delta accumulation overflowing, or
/// trailing bytes after the last element — maps to a typed error. The
/// caller guarantees `count <= bytes.len()` via the directory
/// invariant; it is re-checked here so the function is safe in
/// isolation.
pub fn decode_section<T: Pod>(
    bytes: &[u8],
    count: usize,
    encoding: SectionEncoding,
) -> Result<Vec<T>, SnapshotError> {
    debug_assert_ne!(encoding, SectionEncoding::Raw);
    if count > bytes.len() {
        return Err(SnapshotError::Malformed("encoded section over-declares its decoded length"));
    }
    if encoding == SectionEncoding::EliasFano {
        return decode_elias_fano(bytes, count);
    }
    let mut r = VarintReader::new(bytes);
    let mut out = Vec::with_capacity(count);
    let mut acc = 0u64;
    for i in 0..count {
        let v = r.read()?;
        let value = match encoding {
            SectionEncoding::Varint => v,
            SectionEncoding::DeltaVarint => {
                if i == 0 {
                    acc = v;
                } else {
                    acc = acc
                        .checked_add(v)
                        .ok_or(SnapshotError::Malformed("delta-varint sum overflows 64 bits"))?;
                }
                acc
            }
            SectionEncoding::Raw | SectionEncoding::EliasFano => {
                unreachable!("handled above")
            }
        };
        out.push(
            T::from_u64(value)
                .ok_or(SnapshotError::Malformed("encoded element out of range for its type"))?,
        );
    }
    if r.position() != bytes.len() {
        return Err(SnapshotError::Malformed("trailing bytes in encoded section"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_known_bytes() {
        // The worked example from docs/SNAPSHOT.md: 300 = 0b10_0101100.
        let mut out = Vec::new();
        push_varint(&mut out, 300);
        assert_eq!(out, [0xAC, 0x02]);
        assert_eq!(varint_len(300), 2);

        for (v, len) in [(0u64, 1), (127, 1), (128, 2), (16_383, 2), (16_384, 3), (u64::MAX, 10)] {
            assert_eq!(varint_len(v), len, "varint_len({v})");
            let mut out = Vec::new();
            push_varint(&mut out, v);
            assert_eq!(out.len(), len);
            let mut r = VarintReader::new(&out);
            assert_eq!(r.read().expect("round trip"), v);
            assert_eq!(r.position(), out.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_overflow_and_overlength() {
        // Truncated mid-varint: continuation bit set, no next byte.
        let mut r = VarintReader::new(&[0x80]);
        assert!(matches!(r.read(), Err(SnapshotError::Truncated)));

        // u64::MAX + 1 territory: 10th byte > 1.
        let mut bytes = vec![0xFF; 9];
        bytes.push(0x02);
        let mut r = VarintReader::new(&bytes);
        assert!(matches!(r.read(), Err(SnapshotError::Malformed(_))));

        // 11 bytes of continuation.
        let bytes = vec![0x80; 11];
        let mut r = VarintReader::new(&bytes);
        assert!(matches!(r.read(), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn plan_prefers_the_right_codec() {
        // Small values: plain varint wins.
        let members: Vec<u32> = (0..1000).map(|i| i % 97).collect();
        let (enc, len) = plan(&members);
        assert_eq!(enc, SectionEncoding::Varint);
        assert_eq!(len, 1000);

        // Monotone with large values: delta wins.
        let offsets: Vec<u64> = (0..1000u64).map(|i| 1 << 40 | (i * 13)).collect();
        let (enc, len) = plan(&offsets);
        assert_eq!(enc, SectionEncoding::DeltaVarint);
        assert!(len < 8 * 1000 / 2, "delta should crush monotone arrays, got {len}");

        // Sorted full-range hashes: deltas average ~54 bits, so both
        // varint codecs lose to raw — Elias-Fano's fixed-width low bits
        // plus unary high bits win (~log2(u/n) + 2 bits per key).
        let keys: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let (enc, len) = plan(&sorted);
        assert_eq!(enc, SectionEncoding::EliasFano);
        assert!(len < 8000 * 15 / 16, "elias-fano must beat raw with margin, got {len}");

        // UNsorted full-range hashes: nothing applies, raw stays.
        let (enc, len) = plan(&keys);
        assert_eq!((enc, len), (SectionEncoding::Raw, 8000));

        // f32 and u8 sections are never encoded.
        assert_eq!(plan(&[1.0f32; 64]), (SectionEncoding::Raw, 256));
        assert_eq!(plan(&[3u8; 64]), (SectionEncoding::Raw, 64));
        // Empty sections are raw.
        assert_eq!(plan::<u32>(&[]), (SectionEncoding::Raw, 0));
    }

    #[test]
    fn sections_round_trip_and_plan_len_is_exact() {
        let members: Vec<u32> = (0..5000).map(|i| (i * 7) % 1103).collect();
        let (enc, len) = plan(&members);
        let bytes = encode_section(&members, enc);
        assert_eq!(bytes.len() as u64, len);
        assert_eq!(decode_section::<u32>(&bytes, members.len(), enc).expect("decode"), members);

        let offsets: Vec<u64> = (0..5000u64)
            .scan(0, |s, i| {
                *s += i % 31;
                Some(*s)
            })
            .collect();
        let (enc, len) = plan(&offsets);
        assert_eq!(enc, SectionEncoding::DeltaVarint);
        let bytes = encode_section(&offsets, enc);
        assert_eq!(bytes.len() as u64, len);
        assert_eq!(decode_section::<u64>(&bytes, offsets.len(), enc).expect("decode"), offsets);

        // Chunked encoding matches one-shot encoding across boundaries.
        let mut chunked = Vec::new();
        let mut se = SectionEncoder::new(SectionEncoding::DeltaVarint);
        for chunk in offsets.chunks(77) {
            se.extend(chunk, &mut chunked);
        }
        assert_eq!(chunked, bytes);
    }

    #[test]
    fn decode_is_total() {
        let values: Vec<u32> = (0..100).map(|i| i * 1000).collect();
        let bytes = encode_section(&values, SectionEncoding::Varint);

        // Truncation at every cut is an error, never a panic.
        for cut in 0..bytes.len() {
            assert!(
                decode_section::<u32>(&bytes[..cut], values.len(), SectionEncoding::Varint)
                    .is_err(),
                "cut at {cut}"
            );
        }
        // Wrong count: too few leaves trailing bytes, too many truncates.
        assert!(matches!(
            decode_section::<u32>(&bytes, values.len() - 1, SectionEncoding::Varint),
            Err(SnapshotError::Malformed("trailing bytes in encoded section"))
        ));
        assert!(decode_section::<u32>(&bytes, values.len() + 1, SectionEncoding::Varint).is_err());

        // An element past u32::MAX is out of range for a u32 section.
        let mut big = Vec::new();
        push_varint(&mut big, u32::MAX as u64 + 1);
        assert!(matches!(
            decode_section::<u32>(&big, 1, SectionEncoding::Varint),
            Err(SnapshotError::Malformed("encoded element out of range for its type"))
        ));

        // Delta accumulation overflowing u64 is caught.
        let mut overflow = Vec::new();
        push_varint(&mut overflow, u64::MAX);
        push_varint(&mut overflow, 1);
        assert!(matches!(
            decode_section::<u64>(&overflow, 2, SectionEncoding::DeltaVarint),
            Err(SnapshotError::Malformed("delta-varint sum overflows 64 bits"))
        ));

        // The count > bytes.len() guard fires before any allocation.
        assert!(decode_section::<u32>(&[0x01], usize::MAX, SectionEncoding::Varint).is_err());
    }

    #[test]
    fn elias_fano_round_trips_and_plan_len_is_exact() {
        // Sorted uniform u64 hashes: the codec's home turf.
        let mut keys: Vec<u64> =
            (0..4096u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        keys.sort_unstable();
        let (enc, len) = plan(&keys);
        assert_eq!(enc, SectionEncoding::EliasFano);
        let bytes = encode_section(&keys, enc);
        assert_eq!(bytes.len() as u64, len, "planned length must be exact");
        assert_eq!(decode_section::<u64>(&bytes, keys.len(), enc).expect("decode"), keys);

        // Duplicates, zeros, small values, u32 elements, l = 0.
        for values in [
            vec![0u64],
            vec![0, 0, 0, 5, 5, u32::MAX as u64],
            vec![7; 300],
            (0..50).map(|i| i * i).collect(),
            vec![u64::MAX],
            vec![0, u64::MAX / 2, u64::MAX],
        ] {
            let bytes = encode_elias_fano(&values);
            assert_eq!(
                decode_elias_fano::<u64>(&bytes, values.len()).expect("round trip"),
                values,
                "values {values:?}"
            );
        }
        let small: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let bytes = encode_elias_fano(&small);
        assert_eq!(decode_elias_fano::<u32>(&bytes, small.len()).expect("u32"), small);
    }

    #[test]
    fn elias_fano_decode_is_total() {
        let mut keys: Vec<u64> =
            (0..512u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        keys.sort_unstable();
        let bytes = encode_elias_fano(&keys);

        // Truncation at every cut is an error, never a panic.
        for cut in 0..bytes.len() {
            assert!(decode_elias_fano::<u64>(&bytes[..cut], keys.len()).is_err(), "cut at {cut}");
        }
        // Wrong counts are errors (the regions no longer line up).
        assert!(decode_elias_fano::<u64>(&bytes, keys.len() - 1).is_err());
        assert!(decode_elias_fano::<u64>(&bytes, keys.len() + 1).is_err());
        // Appended bytes never decode.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            decode_elias_fano::<u64>(&padded, keys.len()),
            Err(SnapshotError::Malformed(_))
        ));
        // A low width past 63 bits is malformed, not a shift panic.
        let mut bad = bytes.clone();
        bad[0] = 64;
        assert!(matches!(
            decode_elias_fano::<u64>(&bad, keys.len()),
            Err(SnapshotError::Malformed("elias-fano low width exceeds 63 bits"))
        ));
        // A high bit implying a value past 64 bits is caught.
        let wide = vec![62u8, 0xFF, 0xFF];
        assert!(decode_elias_fano::<u64>(&wide, 1).is_err());
        // u32 range check applies after reassembly.
        let big = encode_elias_fano(&[u32::MAX as u64 + 1]);
        assert!(matches!(
            decode_elias_fano::<u32>(&big, 1),
            Err(SnapshotError::Malformed("encoded element out of range for its type"))
        ));
    }
}
