//! Hand-rolled read-only memory mapping — the one `unsafe` module in
//! the workspace.
//!
//! The container this engine ships in has no network access, so the
//! usual mmap crates are out; the two raw syscalls are declared here
//! directly. The module's job is to confine every unsafe obligation to
//! one screen of code:
//!
//! * the mapping is `PROT_READ`/`MAP_PRIVATE`, so no alias can write
//!   through it and sharing `&[T]` views across threads is sound;
//! * [`MmapSection`] only hands out element types from the sealed
//!   [`Pod`] set (`u8`/`u32`/`u64`/`f32`), all of
//!   which are valid for every bit pattern;
//! * alignment is checked at construction against the page-aligned
//!   section offsets the snapshot format guarantees;
//! * the byte→element reinterpretation is only compiled on
//!   little-endian hosts — on big-endian targets [`Mmap::map`] refuses
//!   and the loader falls back to the buffered read path.
#![allow(unsafe_code)]

use std::fs::File;
use std::marker::PhantomData;
use std::sync::Arc;

use hlsh_vec::SliceBacking;

use super::source::Pod;
use super::SnapshotError;

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::os::raw::{c_int, c_long, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
    /// `madvise` advice values — identical on Linux and macOS.
    pub const MADV_SEQUENTIAL: c_int = 2;
    pub const MADV_WILLNEED: c_int = 3;
    /// `sysconf` name for the page size; the value differs per OS, so
    /// it is only defined where we know it.
    #[cfg(target_os = "linux")]
    pub const SC_PAGESIZE: c_int = 30;
    #[cfg(target_os = "macos")]
    pub const SC_PAGESIZE: c_int = 29;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
        #[cfg(any(target_os = "linux", target_os = "macos"))]
        pub fn sysconf(name: c_int) -> c_long;
    }
}

/// Whether [`Mmap::map`] can succeed on this host (64-bit unix,
/// little-endian). The load planner falls back to the buffered read
/// path when it cannot.
pub fn mmap_supported() -> bool {
    cfg!(all(unix, target_pointer_width = "64", target_endian = "little"))
}

/// The runtime page size in bytes, from `sysconf(_SC_PAGESIZE)`, cached
/// after the first call. Falls back to 4096 when the host does not
/// expose it (or reports something implausible — the snapshot format's
/// alignment floor is 4096, so smaller values are rounded up to it).
pub fn page_size() -> u64 {
    static CACHED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        #[cfg(all(
            unix,
            target_pointer_width = "64",
            any(target_os = "linux", target_os = "macos")
        ))]
        {
            // SAFETY: sysconf is a pure query; a negative or zero
            // return means "unknown" and falls through to the default.
            let v = unsafe { sys::sysconf(sys::SC_PAGESIZE) };
            if v >= 4096 && (v as u64).is_power_of_two() {
                return v as u64;
            }
        }
        4096
    })
}

/// A whole snapshot file mapped read-only. Dropping the mapping
/// unmaps it; [`MmapSection`]s keep it alive through an [`Arc`], so a
/// loaded index can outlive the loader.
#[derive(Debug)]
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ, private) for its whole
// lifetime, so shared references into it are sound from any thread.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `len` bytes of `file` read-only from offset 0.
    ///
    /// Fails with [`SnapshotError::MmapUnavailable`] on platforms the
    /// wrapper does not cover (non-unix, 32-bit, or big-endian hosts —
    /// the zero-copy views reinterpret little-endian file bytes
    /// in place); callers fall back to the buffered read path.
    #[cfg(all(unix, target_pointer_width = "64"))]
    pub fn map(file: &File, len: u64) -> Result<Self, SnapshotError> {
        use std::os::unix::io::AsRawFd;

        if cfg!(target_endian = "big") {
            return Err(SnapshotError::MmapUnavailable("big-endian host"));
        }
        if len == 0 {
            return Err(SnapshotError::Truncated);
        }
        let len =
            usize::try_from(len).map_err(|_| SnapshotError::MmapUnavailable("file too large"))?;
        // SAFETY: a fresh read-only private mapping of a file we hold
        // open; the kernel picks the address. Failure is reported via
        // MAP_FAILED, checked below.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(SnapshotError::Io(std::io::Error::last_os_error()));
        }
        Ok(Self { ptr: ptr as *const u8, len })
    }

    /// Unsupported-platform stub; the loader reports a typed error and
    /// the caller can retry with the buffered read path.
    #[cfg(not(all(unix, target_pointer_width = "64")))]
    pub fn map(_file: &File, _len: u64) -> Result<Self, SnapshotError> {
        Err(SnapshotError::MmapUnavailable("mmap wrapper requires a 64-bit unix host"))
    }

    /// Advises the kernel to read the whole mapping ahead
    /// (`MADV_SEQUENTIAL` then `MADV_WILLNEED`), turning demand-paged
    /// faults into sequential readahead. Best-effort: advice is a hint
    /// and failures are ignored — the mapping stays correct either way.
    #[cfg(all(unix, target_pointer_width = "64"))]
    pub fn advise_prefetch(&self) {
        // SAFETY: ptr/len describe a live mapping owned by self;
        // madvise does not invalidate it, and errors are advisory.
        unsafe {
            let addr = self.ptr as *mut std::os::raw::c_void;
            sys::madvise(addr, self.len, sys::MADV_SEQUENTIAL);
            sys::madvise(addr, self.len, sys::MADV_WILLNEED);
        }
    }

    /// No-op stub on hosts without the mmap wrapper.
    #[cfg(not(all(unix, target_pointer_width = "64")))]
    pub fn advise_prefetch(&self) {}

    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by
        // self; the bytes are plain initialised memory for as long as
        // the mapping lives.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        // SAFETY: exactly the range returned by mmap, unmapped once.
        unsafe {
            sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
        }
    }
}

/// One typed section view into a shared mapping: the zero-copy backing
/// a [`Section`](hlsh_vec::Section) borrows its elements from.
#[derive(Debug)]
pub struct MmapSection<T> {
    map: Arc<Mmap>,
    /// Byte offset of the first element (validated aligned for `T`).
    offset: usize,
    /// Element count.
    len: usize,
    _elem: PhantomData<fn() -> T>,
}

impl<T: Pod> MmapSection<T> {
    /// A view of `len` elements of `T` at byte `offset` of `map`.
    ///
    /// Rejects out-of-range and misaligned views with typed errors —
    /// after this check, [`slice`](SliceBacking::slice) is infallible.
    pub fn new(map: Arc<Mmap>, offset: u64, len: usize) -> Result<Self, SnapshotError> {
        let offset = usize::try_from(offset).map_err(|_| SnapshotError::Truncated)?;
        let byte_len = len.checked_mul(std::mem::size_of::<T>()).ok_or(SnapshotError::Truncated)?;
        let end = offset.checked_add(byte_len).ok_or(SnapshotError::Truncated)?;
        if end > map.as_bytes().len() {
            return Err(SnapshotError::Truncated);
        }
        if !(map.as_bytes().as_ptr() as usize + offset).is_multiple_of(std::mem::align_of::<T>()) {
            return Err(SnapshotError::Malformed("section not aligned for its element type"));
        }
        Ok(Self { map, offset, len, _elem: PhantomData })
    }
}

impl<T: Pod> SliceBacking<T> for MmapSection<T> {
    fn slice(&self) -> &[T] {
        let bytes =
            &self.map.as_bytes()[self.offset..self.offset + self.len * std::mem::size_of::<T>()];
        // SAFETY: range and alignment were validated in `new`; `T` is
        // one of the sealed Pod primitives, valid for every bit
        // pattern; the mapping is immutable and outlives the borrow
        // via the Arc. Only compiled little-endian (see `Mmap::map`),
        // so the in-file LE layout is the in-memory layout.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, self.len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
    fn maps_a_file_and_reads_typed_views() {
        let dir = std::env::temp_dir().join("hlsh-snapshot-mmap-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("map-{}.bin", std::process::id()));
        let mut payload = vec![0u8; 4096 + 16];
        payload[4096..4104].copy_from_slice(&0x0102_0304_0506_0708u64.to_le_bytes());
        payload[4104..4108].copy_from_slice(&1.5f32.to_le_bytes());
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(&payload))
            .expect("write fixture");

        let file = File::open(&path).expect("open fixture");
        let map = Arc::new(Mmap::map(&file, payload.len() as u64).expect("map fixture"));
        assert_eq!(map.as_bytes().len(), payload.len());

        let words = MmapSection::<u64>::new(Arc::clone(&map), 4096, 1).expect("u64 view");
        assert_eq!(words.slice(), &[0x0102_0304_0506_0708]);
        let floats = MmapSection::<f32>::new(Arc::clone(&map), 4104, 1).expect("f32 view");
        assert_eq!(floats.slice(), &[1.5]);

        // Out-of-range and misaligned views are typed errors.
        assert!(MmapSection::<u64>::new(Arc::clone(&map), 4096, 1000).is_err());
        assert!(MmapSection::<u64>::new(Arc::clone(&map), 4097, 1).is_err());

        // Prefetch advice is best-effort and must not disturb the data.
        map.advise_prefetch();
        assert_eq!(words.slice(), &[0x0102_0304_0506_0708]);

        drop((words, floats, map));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn page_size_is_sane_and_cached() {
        let ps = page_size();
        assert!(ps >= 4096, "page size {ps} below the format floor");
        assert!(ps.is_power_of_two());
        assert_eq!(page_size(), ps);
    }
}
