//! Pluggable bucket storage backends.
//!
//! A [`HashTable`](crate::table::HashTable) delegates all bucket
//! storage to a [`BucketStore`]. Two backends ship:
//!
//! * [`MapStore`] — the build-time and streaming backend: a
//!   `FxHashMap<u64, Bucket>` that accepts inserts in any order.
//! * [`FrozenStore`] — the read-optimised backend: a CSR-style arena
//!   (sorted key array, offset array, one contiguous member slab, one
//!   contiguous HLL register slab addressed through a presence bitmap)
//!   built by [`freeze`](crate::table::HashTable::freeze). A lookup is
//!   a binary search over a dense `u64` array plus slice borrows — no
//!   pointer chasing, no per-bucket allocation of any kind, and members
//!   of neighbouring buckets share cache lines during multi-probe
//!   sweeps.
//!
//! Both backends hand out [`BucketRef`] views, so every query path is
//! backend-agnostic; [`thaw`](FrozenStore::thaw) converts back when an
//! index must resume streaming ingestion.

use hlsh_hll::{HllConfig, SketchRef};
use hlsh_vec::{PointId, Section};

use crate::bucket::{Bucket, BucketRef};
use crate::hasher::FxHashMap;

/// Borrowed view of a [`FrozenStore`]'s seven flat arrays plus its
/// sketch config, in on-disk section order (keys, prefix, offsets,
/// members, presence bitmap, rank table, register slab).
pub(crate) type StoreSections<'a> = (
    &'a Section<u64>,
    &'a Section<u32>,
    &'a Section<u64>,
    &'a Section<PointId>,
    &'a Section<u64>,
    &'a Section<u32>,
    &'a Section<u8>,
    Option<HllConfig>,
);

/// Storage of a hash table's buckets, keyed by the 64-bit bucket key.
pub trait BucketStore {
    /// Creates an empty store.
    fn new() -> Self
    where
        Self: Sized;

    /// Inserts a point into the bucket for `key` (Algorithm 1 lines
    /// 3–4: append the member and update the bucket's lazy HLL).
    ///
    /// # Panics
    /// Immutable backends ([`FrozenStore`]) panic; convert with
    /// [`FrozenStore::thaw`] first.
    fn insert(&mut self, key: u64, id: PointId, config: HllConfig, lazy_threshold: usize);

    /// Inserts a whole run of members into the bucket for `key` — the
    /// bulk entry point of the blocked build pipeline, which groups a
    /// table's `(key, id)` pairs by key before touching the store. The
    /// default loops [`insert`](Self::insert); [`MapStore`] overrides
    /// it with one entry lookup per run. Observables are byte-identical
    /// to the per-id loop either way.
    ///
    /// # Panics
    /// Immutable backends ([`FrozenStore`]) panic — they bulk-build
    /// through [`from_runs`](Self::from_runs) instead.
    fn insert_run(&mut self, key: u64, ids: &[PointId], config: HllConfig, lazy_threshold: usize) {
        for &id in ids {
            self.insert(key, id, config, lazy_threshold);
        }
    }

    /// Builds a whole store from key-grouped runs (the blocked build
    /// pipeline's terminal stage). The default creates an empty store
    /// and replays [`insert_run`](Self::insert_run); [`FrozenStore`]
    /// overrides it to lay out its CSR arena directly from the runs,
    /// skipping the intermediate hashmap entirely.
    ///
    /// The result is byte-identical to per-point inserts of the same
    /// `(key, id)` sequence (followed by a freeze, for the frozen
    /// backend).
    fn from_runs(runs: &crate::pipeline::KeyRuns, config: HllConfig, lazy_threshold: usize) -> Self
    where
        Self: Sized,
    {
        let mut store = Self::new();
        for (key, ids) in runs.iter() {
            store.insert_run(key, ids, config, lazy_threshold);
        }
        store
    }

    /// Looks up the bucket for a raw key.
    fn get(&self, key: u64) -> Option<BucketRef<'_>>;

    /// Number of non-empty buckets.
    fn bucket_count(&self) -> usize;

    /// Iterates over all `(key, bucket)` pairs. Iteration order is
    /// backend-defined (arbitrary for [`MapStore`], ascending key order
    /// for [`FrozenStore`]).
    fn iter(&self) -> Box<dyn Iterator<Item = (u64, BucketRef<'_>)> + '_>;

    /// Total heap bytes held by the store.
    fn memory_bytes(&self) -> usize;
}

/// The hashmap-backed build/streaming store.
#[derive(Clone, Debug, Default)]
pub struct MapStore {
    buckets: FxHashMap<u64, Bucket>,
}

impl BucketStore for MapStore {
    fn new() -> Self {
        Self::default()
    }

    fn insert(&mut self, key: u64, id: PointId, config: HllConfig, lazy_threshold: usize) {
        self.buckets.entry(key).or_default().insert(id, config, lazy_threshold);
    }

    fn insert_run(&mut self, key: u64, ids: &[PointId], config: HllConfig, lazy_threshold: usize) {
        self.buckets.entry(key).or_default().insert_run(ids, config, lazy_threshold);
    }

    /// Like the default replay, but the bucket table is reserved up
    /// front — the run count *is* the final bucket count, so no rehash
    /// ever happens mid-build.
    fn from_runs(
        runs: &crate::pipeline::KeyRuns,
        config: HllConfig,
        lazy_threshold: usize,
    ) -> Self {
        let mut store = Self::default();
        store.buckets.reserve(runs.len());
        for (key, ids) in runs.iter() {
            store.insert_run(key, ids, config, lazy_threshold);
        }
        store
    }

    fn get(&self, key: u64) -> Option<BucketRef<'_>> {
        self.buckets.get(&key).map(Bucket::as_view)
    }

    fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn iter(&self) -> Box<dyn Iterator<Item = (u64, BucketRef<'_>)> + '_> {
        Box::new(self.buckets.iter().map(|(&k, b)| (k, b.as_view())))
    }

    fn memory_bytes(&self) -> usize {
        self.buckets.values().map(Bucket::memory_bytes).sum()
    }
}

impl MapStore {
    /// Converts into the read-optimised CSR arena. Member order within
    /// each bucket is preserved, so query outputs are byte-identical
    /// across backends; sketch registers are copied into one contiguous
    /// slab (byte-identical registers, zero per-bucket allocations).
    ///
    /// # Panics
    /// Panics if sketched buckets disagree on their [`HllConfig`]
    /// (cannot happen through a [`HashTable`](crate::table::HashTable),
    /// which threads one config through every insert).
    pub fn freeze(self) -> FrozenStore {
        let mut entries: Vec<(u64, Bucket)> = self.buckets.into_iter().collect();
        entries.sort_unstable_by_key(|(k, _)| *k);

        let total_members: usize = entries.iter().map(|(_, b)| b.len()).sum();
        let mut keys = Vec::with_capacity(entries.len());
        let mut offsets = Vec::with_capacity(entries.len() + 1);
        let mut members = Vec::with_capacity(total_members);
        let mut sketch_config: Option<HllConfig> = None;
        let mut sketch_bits = vec![0u64; entries.len().div_ceil(64)];
        let mut registers: Vec<u8> = Vec::new();
        offsets.push(0u64);
        for (i, (key, bucket)) in entries.into_iter().enumerate() {
            let (bucket_members, sketch) = bucket.into_parts();
            keys.push(key);
            members.extend_from_slice(&bucket_members);
            offsets.push(members.len() as u64);
            if let Some(s) = sketch {
                match sketch_config {
                    None => sketch_config = Some(s.config()),
                    Some(c) => {
                        assert_eq!(c, s.config(), "mixed HllConfigs in one store")
                    }
                }
                sketch_bits[i / 64] |= 1u64 << (i % 64);
                registers.extend_from_slice(s.registers());
            }
        }
        let prefix = prefix_table(&keys);
        let sketch_rank = rank_table(&sketch_bits);
        FrozenStore {
            keys: keys.into(),
            prefix: prefix.into(),
            offsets: offsets.into(),
            members: members.into(),
            sketch_config,
            sketch_bits: sketch_bits.into(),
            sketch_rank: sketch_rank.into(),
            registers: registers.into(),
        }
    }
}

/// The read-optimised frozen store: a CSR-style arena with zero
/// pointers per bucket.
///
/// Layout (for `B` buckets holding `M` members total, `P` of them
/// sketched with `m` registers each):
///
/// ```text
/// keys:         [u64; B]          sorted bucket keys
/// prefix:       [u32; 257]        key range per top byte (search accelerator)
/// offsets:      [u64; B + 1]      member-slab extents per bucket
/// members:      [PointId; M]      one contiguous slab
/// sketch_bits:  [u64; ⌈B/64⌉]     presence bitmap: bucket i sketched?
/// sketch_rank:  [u32; ⌈B/64⌉]     popcount prefix sums for O(1) rank
/// registers:    [u8; P·m]         one contiguous register slab
/// ```
///
/// Lookup = binary search on `keys` + two offset reads; a sketched
/// bucket's registers are the `rank(i)`-th `m`-byte row of the slab,
/// where `rank(i)` counts sketched buckets before `i` via the bitmap —
/// no `Option<HyperLogLog>` array, no per-bucket heap allocation of any
/// kind survives freezing. Because bucket keys are well-mixed hash
/// outputs, the top-byte prefix table narrows each search to ≈ `B/256`
/// keys (a handful of probes even for millions of buckets).
///
/// Equality compares the full arena contents — two stores are equal iff
/// they hold the same buckets with the same members and sketch
/// registers — which is exactly the byte-identity assertion the blocked
/// build pipeline's CI gate needs. (A [`Section`] compares by contents,
/// so an mmap-loaded store equals the owned store that wrote it.)
///
/// Every array is a [`Section`]: heap-owned after a build or a buffered
/// snapshot read, borrowed zero-copy from the mapping after an mmap
/// snapshot load. `offsets` is pinned to `u64` (not `usize`) because it
/// is persisted verbatim in the snapshot format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrozenStore {
    keys: Section<u64>,
    prefix: Section<u32>,
    offsets: Section<u64>,
    members: Section<PointId>,
    /// Config shared by every packed sketch; `None` iff no bucket is
    /// sketched (then `registers` is empty and the bitmap all-zero).
    sketch_config: Option<HllConfig>,
    sketch_bits: Section<u64>,
    sketch_rank: Section<u32>,
    registers: Section<u8>,
}

fn prefix_table(keys: &[u64]) -> Vec<u32> {
    let mut prefix = vec![0u32; 257];
    for &key in keys {
        prefix[(key >> 56) as usize + 1] += 1;
    }
    for p in 1..prefix.len() {
        prefix[p] += prefix[p - 1];
    }
    prefix
}

/// Per-word popcount prefix sums over the presence bitmap:
/// `rank[w] = popcount(bits[..w])`.
fn rank_table(bits: &[u64]) -> Vec<u32> {
    let mut rank = Vec::with_capacity(bits.len());
    let mut total = 0u32;
    for &word in bits {
        rank.push(total);
        total += word.count_ones();
    }
    rank
}

impl FrozenStore {
    /// Whether bucket `i` carries a packed sketch.
    #[inline]
    fn is_sketched(&self, i: usize) -> bool {
        (self.sketch_bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of sketched buckets before bucket `i` = this bucket's row
    /// in the register slab.
    #[inline]
    fn sketch_row(&self, i: usize) -> usize {
        let word = i / 64;
        let below = self.sketch_bits[word] & ((1u64 << (i % 64)) - 1);
        self.sketch_rank[word] as usize + below.count_ones() as usize
    }

    /// The borrowed sketch view for bucket `i`, straight out of the
    /// register slab.
    #[inline]
    fn sketch_at(&self, i: usize) -> Option<SketchRef<'_>> {
        if !self.is_sketched(i) {
            return None;
        }
        let config = self.sketch_config.expect("bitmap bit set without a sketch config");
        let m = config.registers();
        let row = self.sketch_row(i);
        Some(SketchRef::new(config, &self.registers[row * m..(row + 1) * m]))
    }

    fn bucket_at(&self, i: usize) -> BucketRef<'_> {
        BucketRef::from_parts(
            &self.members[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            self.sketch_at(i),
        )
    }

    /// Converts back to the mutable hashmap store (resuming streaming
    /// ingestion after a freeze). Sketch registers are copied back out
    /// of the slab, so a freeze/thaw round trip is lossless.
    pub fn thaw(self) -> MapStore {
        let mut buckets = FxHashMap::default();
        buckets.reserve(self.keys.len());
        for (i, &key) in self.keys.iter().enumerate() {
            let members =
                self.members[self.offsets[i] as usize..self.offsets[i + 1] as usize].to_vec();
            let sketch = self.sketch_at(i).map(|s| s.to_owned());
            buckets.insert(key, Bucket::from_parts(members, sketch));
        }
        MapStore { buckets }
    }

    /// Total members across all buckets (the slab length).
    pub fn member_slots(&self) -> usize {
        self.members.len()
    }

    /// Bytes of the packed register slab (= sketched buckets × register
    /// count; exposed for memory-accounting tests).
    pub fn sketch_slab_bytes(&self) -> usize {
        self.registers.len()
    }

    /// The seven flat arrays plus the sketch config, in on-disk section
    /// order — the snapshot writer's view of the arena.
    pub(crate) fn sections(&self) -> StoreSections<'_> {
        (
            &self.keys,
            &self.prefix,
            &self.offsets,
            &self.members,
            &self.sketch_bits,
            &self.sketch_rank,
            &self.registers,
            self.sketch_config,
        )
    }

    /// Reassembles an arena from its seven flat arrays (the snapshot
    /// loader's entry point), verifying every structural invariant the
    /// query paths rely on so no lookup can panic even if the arrays
    /// came from a corrupt file. The checks only touch the small
    /// metadata arrays (`prefix`, `offsets`, bitmap, rank) — the member
    /// and register slabs stay untouched, which is what keeps the mmap
    /// load path lazy.
    ///
    /// `sketch_config` is the config every packed sketch uses; it is
    /// dropped when no bucket is sketched (empty register slab), which
    /// restores the `None` ⟺ empty-slab invariant.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_sections(
        keys: Section<u64>,
        prefix: Section<u32>,
        offsets: Section<u64>,
        members: Section<PointId>,
        sketch_config: Option<HllConfig>,
        sketch_bits: Section<u64>,
        sketch_rank: Section<u32>,
        registers: Section<u8>,
    ) -> Result<Self, &'static str> {
        let nbuckets = keys.len();
        if prefix.len() != 257 {
            return Err("prefix table must have 257 entries");
        }
        if offsets.len() != nbuckets + 1 {
            return Err("offset array length must be bucket count + 1");
        }
        if offsets.first() != Some(&0) {
            return Err("offset array must start at 0");
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offset array must be non-decreasing");
        }
        if *offsets.last().expect("offsets verified non-empty") != members.len() as u64 {
            return Err("last offset must equal member slab length");
        }
        if prefix.first() != Some(&0) || prefix.windows(2).any(|w| w[0] > w[1]) {
            return Err("prefix table must be a non-decreasing prefix sum from 0");
        }
        if prefix.last() != Some(&(nbuckets as u32)) {
            return Err("prefix table must end at the bucket count");
        }
        let words = nbuckets.div_ceil(64);
        if sketch_bits.len() != words || sketch_rank.len() != words {
            return Err("presence bitmap and rank table must have one word per 64 buckets");
        }
        if sketch_rank.as_slice() != rank_table(&sketch_bits).as_slice() {
            return Err("rank table disagrees with presence bitmap");
        }
        if !nbuckets.is_multiple_of(64) {
            if let Some(&last) = sketch_bits.last() {
                if last >> (nbuckets % 64) != 0 {
                    return Err("presence bitmap has bits beyond the bucket count");
                }
            }
        }
        let sketched: u64 = sketch_bits.iter().map(|w| w.count_ones() as u64).sum();
        match sketch_config {
            Some(c) if sketched > 0 => {
                if registers.len() as u64 != sketched * c.registers() as u64 {
                    return Err("register slab length must be sketched buckets × register count");
                }
            }
            _ => {
                if sketched > 0 {
                    return Err("presence bitmap set without a sketch config");
                }
                if !registers.is_empty() {
                    return Err("register slab must be empty when no bucket is sketched");
                }
            }
        }
        Ok(Self {
            keys,
            prefix,
            offsets,
            members,
            sketch_config: if sketched > 0 { sketch_config } else { None },
            sketch_bits,
            sketch_rank,
            registers,
        })
    }
}

impl BucketStore for FrozenStore {
    fn new() -> Self {
        Self {
            keys: Section::new(),
            prefix: vec![0; 257].into(),
            offsets: vec![0].into(),
            members: Section::new(),
            sketch_config: None,
            sketch_bits: Section::new(),
            sketch_rank: Section::new(),
            registers: Section::new(),
        }
    }

    fn insert(&mut self, _key: u64, _id: PointId, _config: HllConfig, _lazy_threshold: usize) {
        panic!("FrozenStore is immutable; thaw() the table back to a MapStore before inserting");
    }

    /// Lays the CSR arena out directly from the key-grouped runs — the
    /// blocked build pipeline's zero-hashmap path. Runs arrive in
    /// ascending key order with members in insertion order, which is
    /// exactly the layout [`MapStore::freeze`] produces, so the result
    /// is byte-identical to building a `MapStore` from the same
    /// `(key, id)` sequence and freezing it.
    fn from_runs(
        runs: &crate::pipeline::KeyRuns,
        config: HllConfig,
        lazy_threshold: usize,
    ) -> Self {
        let nbuckets = runs.len();
        let mut keys = Vec::with_capacity(nbuckets);
        let mut offsets = Vec::with_capacity(nbuckets + 1);
        let mut members = Vec::with_capacity(runs.total_members());
        let mut sketch_config: Option<HllConfig> = None;
        let mut sketch_bits = vec![0u64; nbuckets.div_ceil(64)];
        let mut registers: Vec<u8> = Vec::new();
        offsets.push(0u64);
        let mut scratch = hlsh_hll::HyperLogLog::new(config);
        for (i, (key, ids)) in runs.iter().enumerate() {
            debug_assert!(keys.last().is_none_or(|&k| k < key), "runs must ascend by key");
            keys.push(key);
            members.extend_from_slice(ids);
            offsets.push(members.len() as u64);
            if ids.len() >= lazy_threshold {
                if sketch_config.is_none() {
                    sketch_config = Some(config);
                }
                scratch.clear();
                for &id in ids {
                    scratch.insert(id as u64);
                }
                sketch_bits[i / 64] |= 1u64 << (i % 64);
                registers.extend_from_slice(scratch.registers());
            }
        }
        let prefix = prefix_table(&keys);
        let sketch_rank = rank_table(&sketch_bits);
        FrozenStore {
            keys: keys.into(),
            prefix: prefix.into(),
            offsets: offsets.into(),
            members: members.into(),
            sketch_config,
            sketch_bits: sketch_bits.into(),
            sketch_rank: sketch_rank.into(),
            registers: registers.into(),
        }
    }

    fn get(&self, key: u64) -> Option<BucketRef<'_>> {
        let p = (key >> 56) as usize;
        let (lo, hi) = (self.prefix[p] as usize, self.prefix[p + 1] as usize);
        self.keys[lo..hi].binary_search(&key).ok().map(|i| self.bucket_at(lo + i))
    }

    fn bucket_count(&self) -> usize {
        self.keys.len()
    }

    fn iter(&self) -> Box<dyn Iterator<Item = (u64, BucketRef<'_>)> + '_> {
        Box::new(self.keys.iter().enumerate().map(|(i, &k)| (k, self.bucket_at(i))))
    }

    /// Exact heap bytes of the arena: the seven flat arrays, nothing
    /// else — there are no per-bucket allocations left to estimate.
    /// Mmap-backed sections report zero: their bytes live in the page
    /// cache, not this process's heap.
    fn memory_bytes(&self) -> usize {
        self.keys.heap_capacity() * std::mem::size_of::<u64>()
            + self.prefix.heap_capacity() * std::mem::size_of::<u32>()
            + self.offsets.heap_capacity() * std::mem::size_of::<u64>()
            + self.members.heap_capacity() * std::mem::size_of::<PointId>()
            + self.sketch_bits.heap_capacity() * std::mem::size_of::<u64>()
            + self.sketch_rank.heap_capacity() * std::mem::size_of::<u32>()
            + self.registers.heap_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HllConfig {
        HllConfig::new(7, 99)
    }

    fn populated_map() -> MapStore {
        let mut m = MapStore::new();
        // Three buckets, one crossing the lazy threshold.
        for id in 0..200u32 {
            m.insert(17, id, cfg(), 128);
        }
        for id in 200..205u32 {
            m.insert(3, id, cfg(), 128);
        }
        m.insert(u64::MAX, 999, cfg(), 128);
        m
    }

    #[test]
    fn map_and_frozen_agree_on_every_key() {
        let map = populated_map();
        let frozen = map.clone().freeze();
        assert_eq!(map.bucket_count(), frozen.bucket_count());
        for key in [3u64, 17, u64::MAX, 0, 12345] {
            match (map.get(key), frozen.get(key)) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.members(), b.members(), "members for key {key}");
                    assert_eq!(a.has_sketch(), b.has_sketch(), "sketch presence for key {key}");
                    if let (Some(sa), Some(sb)) = (a.sketch(), b.sketch()) {
                        assert_eq!(sa.registers(), sb.registers());
                    }
                }
                (None, None) => {}
                (a, b) => panic!("key {key}: map {:?} vs frozen {:?}", a.is_some(), b.is_some()),
            }
        }
    }

    #[test]
    fn frozen_iterates_in_key_order() {
        let frozen = populated_map().freeze();
        let keys: Vec<u64> = frozen.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![3, 17, u64::MAX]);
        assert_eq!(frozen.member_slots(), 206);
    }

    #[test]
    fn thaw_round_trips() {
        let map = populated_map();
        let thawed = map.clone().freeze().thaw();
        assert_eq!(map.bucket_count(), thawed.bucket_count());
        for (key, bucket) in map.iter() {
            let t = thawed.get(key).expect("key lost in round trip");
            assert_eq!(bucket.members(), t.members());
            assert_eq!(bucket.has_sketch(), t.has_sketch());
        }
        // A thawed store accepts inserts again.
        let mut thawed = thawed;
        thawed.insert(3, 1000, cfg(), 128);
        assert_eq!(thawed.get(3).unwrap().len(), 6);
    }

    #[test]
    #[should_panic(expected = "immutable")]
    fn frozen_insert_panics() {
        let mut frozen = populated_map().freeze();
        frozen.insert(1, 1, cfg(), 128);
    }

    #[test]
    fn empty_stores_behave() {
        let map = MapStore::new();
        let frozen = MapStore::new().freeze();
        assert_eq!(map.bucket_count(), 0);
        assert_eq!(frozen.bucket_count(), 0);
        assert!(map.get(0).is_none());
        assert!(frozen.get(0).is_none());
        assert_eq!(frozen.iter().count(), 0);
    }

    #[test]
    fn frozen_lookup_has_no_allocation_per_hit() {
        // Structural check: the returned view borrows the slab.
        let frozen = populated_map().freeze();
        let a = frozen.get(17).unwrap();
        let b = frozen.get(17).unwrap();
        assert_eq!(a.members().as_ptr(), b.members().as_ptr());
    }

    #[test]
    fn memory_accounting_is_positive_and_comparable() {
        let map = populated_map();
        let frozen = map.clone().freeze();
        assert!(map.memory_bytes() > 0);
        assert!(frozen.memory_bytes() > 0);
        // The frozen arena must at least hold the member slab.
        assert!(frozen.memory_bytes() >= 206 * std::mem::size_of::<PointId>());
    }

    #[test]
    fn frozen_sketches_live_in_one_slab() {
        // One bucket (200 members) crosses the lazy threshold of 128,
        // the other two stay raw: the slab holds exactly one sketch's
        // registers and memory accounting is the closed-form sum of the
        // flat arrays — no per-bucket sketch heap objects remain.
        let frozen = populated_map().freeze();
        let m = cfg().registers();
        assert_eq!(frozen.sketch_slab_bytes(), m);
        let expected = frozen.keys.heap_capacity() * std::mem::size_of::<u64>()
            + frozen.prefix.heap_capacity() * std::mem::size_of::<u32>()
            + frozen.offsets.heap_capacity() * std::mem::size_of::<u64>()
            + frozen.members.heap_capacity() * std::mem::size_of::<PointId>()
            + frozen.sketch_bits.heap_capacity() * std::mem::size_of::<u64>()
            + frozen.sketch_rank.heap_capacity() * std::mem::size_of::<u32>()
            + frozen.registers.heap_capacity();
        assert_eq!(frozen.memory_bytes(), expected);

        // The sketched bucket's view borrows straight from the slab.
        let sketched = frozen.get(17).unwrap().sketch().expect("bucket 17 is sketched");
        assert_eq!(sketched.registers().as_ptr(), frozen.registers.as_ptr());
        assert!(frozen.get(3).unwrap().sketch().is_none());

        // Slab registers are byte-identical to the owned-sketch path.
        let map = populated_map();
        let owned = map.get(17).unwrap();
        assert_eq!(owned.sketch().unwrap().registers(), sketched.registers());
        assert_eq!(
            owned.sketch().unwrap().estimate().to_bits(),
            sketched.estimate().to_bits(),
            "estimates must be byte-identical, not merely close"
        );
    }

    #[test]
    fn from_sections_round_trips_and_rejects_malformed() {
        let frozen = populated_map().freeze();
        let (keys, prefix, offsets, members, bits, rank, regs, config) = {
            let (k, p, o, m, b, r, g, c) = frozen.sections();
            (k.clone(), p.clone(), o.clone(), m.clone(), b.clone(), r.clone(), g.clone(), c)
        };
        let rebuilt = FrozenStore::from_sections(
            keys.clone(),
            prefix.clone(),
            offsets.clone(),
            members.clone(),
            config,
            bits.clone(),
            rank.clone(),
            regs.clone(),
        )
        .expect("faithful sections reassemble");
        assert_eq!(rebuilt, frozen);

        // Each structural invariant is enforced, never panicked on.
        let bad_prefix = FrozenStore::from_sections(
            keys.clone(),
            vec![0u32; 13].into(),
            offsets.clone(),
            members.clone(),
            config,
            bits.clone(),
            rank.clone(),
            regs.clone(),
        );
        assert!(bad_prefix.is_err());
        let truncated_offsets = FrozenStore::from_sections(
            keys.clone(),
            prefix.clone(),
            offsets[..offsets.len() - 1].to_vec().into(),
            members.clone(),
            config,
            bits.clone(),
            rank.clone(),
            regs.clone(),
        );
        assert!(truncated_offsets.is_err());
        let short_slab = FrozenStore::from_sections(
            keys.clone(),
            prefix.clone(),
            offsets.clone(),
            members[..members.len() - 1].to_vec().into(),
            config,
            bits.clone(),
            rank.clone(),
            regs.clone(),
        );
        assert!(short_slab.is_err());
        let bad_rank = FrozenStore::from_sections(
            keys,
            prefix,
            offsets,
            members,
            config,
            bits,
            vec![7u32; rank.len()].into(),
            regs,
        );
        assert!(bad_rank.is_err());
    }

    #[test]
    fn rank_lookup_handles_many_buckets() {
        // >64 buckets exercises multi-word bitmap/rank arithmetic:
        // every 3rd bucket sketched, interleaved with raw ones.
        let mut map = MapStore::new();
        for b in 0..200u64 {
            let key = b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let n = if b % 3 == 0 { 10 } else { 2 };
            for id in 0..n {
                map.insert(key, (b * 100 + id) as u32, cfg(), 5);
            }
        }
        let frozen = map.clone().freeze();
        for (key, bucket) in map.iter() {
            let f = frozen.get(key).expect("key survives freeze");
            assert_eq!(bucket.members(), f.members());
            assert_eq!(bucket.has_sketch(), f.has_sketch());
            if let (Some(a), Some(b)) = (bucket.sketch(), f.sketch()) {
                assert_eq!(a.registers(), b.registers());
            }
        }
        let sketched = (0..200u64).filter(|b| b % 3 == 0).count();
        assert_eq!(frozen.sketch_slab_bytes(), sketched * cfg().registers());
    }
}
