//! Pluggable bucket storage backends.
//!
//! A [`HashTable`](crate::table::HashTable) delegates all bucket
//! storage to a [`BucketStore`]. Two backends ship:
//!
//! * [`MapStore`] — the build-time and streaming backend: a
//!   `FxHashMap<u64, Bucket>` that accepts inserts in any order.
//! * [`FrozenStore`] — the read-optimised backend: a CSR-style arena
//!   (sorted key array, offset array, one contiguous member slab, a
//!   parallel sketch array) built by
//!   [`freeze`](crate::table::HashTable::freeze). A lookup is a binary
//!   search over a dense `u64` array plus a slice borrow — no pointer
//!   chasing, no per-bucket allocation, and members of neighbouring
//!   buckets share cache lines during multi-probe sweeps.
//!
//! Both backends hand out [`BucketRef`] views, so every query path is
//! backend-agnostic; [`thaw`](FrozenStore::thaw) converts back when an
//! index must resume streaming ingestion.

use hlsh_hll::{HllConfig, HyperLogLog};
use hlsh_vec::PointId;

use crate::bucket::{Bucket, BucketRef};
use crate::hasher::FxHashMap;

/// Storage of a hash table's buckets, keyed by the 64-bit bucket key.
pub trait BucketStore {
    /// Creates an empty store.
    fn new() -> Self
    where
        Self: Sized;

    /// Inserts a point into the bucket for `key` (Algorithm 1 lines
    /// 3–4: append the member and update the bucket's lazy HLL).
    ///
    /// # Panics
    /// Immutable backends ([`FrozenStore`]) panic; convert with
    /// [`FrozenStore::thaw`] first.
    fn insert(&mut self, key: u64, id: PointId, config: HllConfig, lazy_threshold: usize);

    /// Looks up the bucket for a raw key.
    fn get(&self, key: u64) -> Option<BucketRef<'_>>;

    /// Number of non-empty buckets.
    fn bucket_count(&self) -> usize;

    /// Iterates over all `(key, bucket)` pairs. Iteration order is
    /// backend-defined (arbitrary for [`MapStore`], ascending key order
    /// for [`FrozenStore`]).
    fn iter(&self) -> Box<dyn Iterator<Item = (u64, BucketRef<'_>)> + '_>;

    /// Total heap bytes held by the store.
    fn memory_bytes(&self) -> usize;
}

/// The hashmap-backed build/streaming store.
#[derive(Clone, Debug, Default)]
pub struct MapStore {
    buckets: FxHashMap<u64, Bucket>,
}

impl BucketStore for MapStore {
    fn new() -> Self {
        Self::default()
    }

    fn insert(&mut self, key: u64, id: PointId, config: HllConfig, lazy_threshold: usize) {
        self.buckets.entry(key).or_default().insert(id, config, lazy_threshold);
    }

    fn get(&self, key: u64) -> Option<BucketRef<'_>> {
        self.buckets.get(&key).map(Bucket::as_view)
    }

    fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn iter(&self) -> Box<dyn Iterator<Item = (u64, BucketRef<'_>)> + '_> {
        Box::new(self.buckets.iter().map(|(&k, b)| (k, b.as_view())))
    }

    fn memory_bytes(&self) -> usize {
        self.buckets.values().map(Bucket::memory_bytes).sum()
    }
}

impl MapStore {
    /// Converts into the read-optimised CSR arena. Member order within
    /// each bucket is preserved, so query outputs are byte-identical
    /// across backends.
    pub fn freeze(self) -> FrozenStore {
        let mut entries: Vec<(u64, Bucket)> = self.buckets.into_iter().collect();
        entries.sort_unstable_by_key(|(k, _)| *k);

        let total_members: usize = entries.iter().map(|(_, b)| b.len()).sum();
        let mut keys = Vec::with_capacity(entries.len());
        let mut offsets = Vec::with_capacity(entries.len() + 1);
        let mut members = Vec::with_capacity(total_members);
        let mut sketches = Vec::with_capacity(entries.len());
        offsets.push(0usize);
        for (key, bucket) in entries {
            let (bucket_members, sketch) = bucket.into_parts();
            keys.push(key);
            members.extend_from_slice(&bucket_members);
            offsets.push(members.len());
            sketches.push(sketch);
        }
        let prefix = prefix_table(&keys);
        FrozenStore { keys, prefix, offsets, members, sketches }
    }
}

/// The read-optimised frozen store: a CSR-style arena.
///
/// Layout (for `B` buckets holding `M` members total):
///
/// ```text
/// keys:     [u64; B]        sorted bucket keys
/// prefix:   [u32; 257]      key range per top byte (search accelerator)
/// offsets:  [usize; B + 1]  member-slab extents per bucket
/// members:  [PointId; M]    one contiguous slab
/// sketches: [Option<HyperLogLog>; B]  parallel to keys
/// ```
///
/// Lookup = binary search on `keys` + two offset reads; no per-bucket
/// heap allocation survives freezing. Because bucket keys are
/// well-mixed hash outputs, the top-byte prefix table narrows each
/// search to ≈ `B/256` keys (a handful of probes even for millions of
/// buckets).
#[derive(Clone, Debug)]
pub struct FrozenStore {
    keys: Vec<u64>,
    prefix: Vec<u32>,
    offsets: Vec<usize>,
    members: Vec<PointId>,
    sketches: Vec<Option<HyperLogLog>>,
}

fn prefix_table(keys: &[u64]) -> Vec<u32> {
    let mut prefix = vec![0u32; 257];
    for &key in keys {
        prefix[(key >> 56) as usize + 1] += 1;
    }
    for p in 1..prefix.len() {
        prefix[p] += prefix[p - 1];
    }
    prefix
}

impl FrozenStore {
    fn bucket_at(&self, i: usize) -> BucketRef<'_> {
        BucketRef::from_parts(
            &self.members[self.offsets[i]..self.offsets[i + 1]],
            self.sketches[i].as_ref(),
        )
    }

    /// Converts back to the mutable hashmap store (resuming streaming
    /// ingestion after a freeze).
    pub fn thaw(self) -> MapStore {
        let mut buckets = FxHashMap::default();
        buckets.reserve(self.keys.len());
        for (i, &key) in self.keys.iter().enumerate() {
            let members = self.members[self.offsets[i]..self.offsets[i + 1]].to_vec();
            buckets.insert(key, Bucket::from_parts(members, self.sketches[i].clone()));
        }
        MapStore { buckets }
    }

    /// Total members across all buckets (the slab length).
    pub fn member_slots(&self) -> usize {
        self.members.len()
    }
}

impl BucketStore for FrozenStore {
    fn new() -> Self {
        Self {
            keys: Vec::new(),
            prefix: vec![0; 257],
            offsets: vec![0],
            members: Vec::new(),
            sketches: Vec::new(),
        }
    }

    fn insert(&mut self, _key: u64, _id: PointId, _config: HllConfig, _lazy_threshold: usize) {
        panic!("FrozenStore is immutable; thaw() the table back to a MapStore before inserting");
    }

    fn get(&self, key: u64) -> Option<BucketRef<'_>> {
        let p = (key >> 56) as usize;
        let (lo, hi) = (self.prefix[p] as usize, self.prefix[p + 1] as usize);
        self.keys[lo..hi].binary_search(&key).ok().map(|i| self.bucket_at(lo + i))
    }

    fn bucket_count(&self) -> usize {
        self.keys.len()
    }

    fn iter(&self) -> Box<dyn Iterator<Item = (u64, BucketRef<'_>)> + '_> {
        Box::new(self.keys.iter().enumerate().map(|(i, &k)| (k, self.bucket_at(i))))
    }

    fn memory_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u64>()
            + self.prefix.capacity() * std::mem::size_of::<u32>()
            + self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.members.capacity() * std::mem::size_of::<PointId>()
            + self.sketches.capacity() * std::mem::size_of::<Option<HyperLogLog>>()
            + self
                .sketches
                .iter()
                .map(|s| s.as_ref().map_or(0, HyperLogLog::memory_bytes))
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HllConfig {
        HllConfig::new(7, 99)
    }

    fn populated_map() -> MapStore {
        let mut m = MapStore::new();
        // Three buckets, one crossing the lazy threshold.
        for id in 0..200u32 {
            m.insert(17, id, cfg(), 128);
        }
        for id in 200..205u32 {
            m.insert(3, id, cfg(), 128);
        }
        m.insert(u64::MAX, 999, cfg(), 128);
        m
    }

    #[test]
    fn map_and_frozen_agree_on_every_key() {
        let map = populated_map();
        let frozen = map.clone().freeze();
        assert_eq!(map.bucket_count(), frozen.bucket_count());
        for key in [3u64, 17, u64::MAX, 0, 12345] {
            match (map.get(key), frozen.get(key)) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.members(), b.members(), "members for key {key}");
                    assert_eq!(a.has_sketch(), b.has_sketch(), "sketch presence for key {key}");
                    if let (Some(sa), Some(sb)) = (a.sketch(), b.sketch()) {
                        assert_eq!(sa.registers(), sb.registers());
                    }
                }
                (None, None) => {}
                (a, b) => panic!("key {key}: map {:?} vs frozen {:?}", a.is_some(), b.is_some()),
            }
        }
    }

    #[test]
    fn frozen_iterates_in_key_order() {
        let frozen = populated_map().freeze();
        let keys: Vec<u64> = frozen.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![3, 17, u64::MAX]);
        assert_eq!(frozen.member_slots(), 206);
    }

    #[test]
    fn thaw_round_trips() {
        let map = populated_map();
        let thawed = map.clone().freeze().thaw();
        assert_eq!(map.bucket_count(), thawed.bucket_count());
        for (key, bucket) in map.iter() {
            let t = thawed.get(key).expect("key lost in round trip");
            assert_eq!(bucket.members(), t.members());
            assert_eq!(bucket.has_sketch(), t.has_sketch());
        }
        // A thawed store accepts inserts again.
        let mut thawed = thawed;
        thawed.insert(3, 1000, cfg(), 128);
        assert_eq!(thawed.get(3).unwrap().len(), 6);
    }

    #[test]
    #[should_panic(expected = "immutable")]
    fn frozen_insert_panics() {
        let mut frozen = populated_map().freeze();
        frozen.insert(1, 1, cfg(), 128);
    }

    #[test]
    fn empty_stores_behave() {
        let map = MapStore::new();
        let frozen = MapStore::new().freeze();
        assert_eq!(map.bucket_count(), 0);
        assert_eq!(frozen.bucket_count(), 0);
        assert!(map.get(0).is_none());
        assert!(frozen.get(0).is_none());
        assert_eq!(frozen.iter().count(), 0);
    }

    #[test]
    fn frozen_lookup_has_no_allocation_per_hit() {
        // Structural check: the returned view borrows the slab.
        let frozen = populated_map().freeze();
        let a = frozen.get(17).unwrap();
        let b = frozen.get(17).unwrap();
        assert_eq!(a.members().as_ptr(), b.members().as_ptr());
    }

    #[test]
    fn memory_accounting_is_positive_and_comparable() {
        let map = populated_map();
        let frozen = map.clone().freeze();
        assert!(map.memory_bytes() > 0);
        assert!(frozen.memory_bytes() > 0);
        // The frozen arena must at least hold the member slab.
        assert!(frozen.memory_bytes() >= 206 * std::mem::size_of::<PointId>());
    }
}
