//! A single hash-table bucket with its (lazily materialised)
//! HyperLogLog sketch.
//!
//! Algorithm 1 of the paper inserts each point into one bucket per
//! table and updates that bucket's HLL. §3.2 adds the space
//! optimisation implemented here: buckets smaller than the register
//! count `m` skip the sketch entirely — their members are hashed into
//! the query-time merge accumulator on demand, which yields the exact
//! same merged sketch for strictly less memory.

use hlsh_hll::{HllConfig, HyperLogLog, MergeAccumulator, SketchRef};
use hlsh_vec::PointId;

/// One bucket: the member list plus an optional sketch.
#[derive(Clone, Debug)]
pub struct Bucket {
    members: Vec<PointId>,
    sketch: Option<HyperLogLog>,
}

impl Bucket {
    /// Creates an empty bucket.
    pub fn new() -> Self {
        Self { members: Vec::new(), sketch: None }
    }

    /// Rebuilds a bucket from its parts (used when thawing a frozen
    /// store back into hashmap form).
    pub fn from_parts(members: Vec<PointId>, sketch: Option<HyperLogLog>) -> Self {
        Self { members, sketch }
    }

    /// Decomposes the bucket into its member list and optional sketch
    /// (used when freezing a hashmap store into the CSR arena).
    pub fn into_parts(self) -> (Vec<PointId>, Option<HyperLogLog>) {
        (self.members, self.sketch)
    }

    /// The materialised sketch, if any.
    #[inline]
    pub fn sketch(&self) -> Option<&HyperLogLog> {
        self.sketch.as_ref()
    }

    /// A borrowed view of this bucket, the common currency of every
    /// [`BucketStore`](crate::store::BucketStore) backend.
    #[inline]
    pub fn as_view(&self) -> BucketRef<'_> {
        BucketRef { members: &self.members, sketch: self.sketch.as_ref().map(HyperLogLog::view) }
    }

    /// Inserts a point, materialising the sketch once the bucket
    /// reaches `lazy_threshold` members (the paper suggests `m`).
    ///
    /// When the sketch exists it is updated incrementally, so an insert
    /// is `O(1)` either way.
    pub fn insert(&mut self, id: PointId, config: HllConfig, lazy_threshold: usize) {
        self.members.push(id);
        match &mut self.sketch {
            Some(s) => s.insert(id as u64),
            None => {
                if self.members.len() >= lazy_threshold {
                    let mut s = HyperLogLog::new(config);
                    for &m in &self.members {
                        s.insert(m as u64);
                    }
                    self.sketch = Some(s);
                }
            }
        }
    }

    /// Inserts a whole run of members at once (the bulk path of the
    /// blocked build pipeline). Equivalent to — and byte-identical in
    /// every observable to — inserting the ids one by one with
    /// [`insert`](Self::insert): HyperLogLog registers are element-wise
    /// maxima, so materialising the sketch after the extend sees the
    /// same element set as materialising it mid-stream.
    pub fn insert_run(&mut self, ids: &[PointId], config: HllConfig, lazy_threshold: usize) {
        self.members.extend_from_slice(ids);
        match &mut self.sketch {
            Some(s) => {
                for &id in ids {
                    s.insert(id as u64);
                }
            }
            None => {
                if self.members.len() >= lazy_threshold {
                    let mut s = HyperLogLog::new(config);
                    for &m in &self.members {
                        s.insert(m as u64);
                    }
                    self.sketch = Some(s);
                }
            }
        }
    }

    /// Number of members (bucket size, the `#collisions` contribution).
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the bucket is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member point ids.
    #[inline]
    pub fn members(&self) -> &[PointId] {
        &self.members
    }

    /// Whether the sketch has been materialised.
    pub fn has_sketch(&self) -> bool {
        self.sketch.is_some()
    }

    /// Contributes this bucket to a query-time merge: register-wise max
    /// if the sketch exists, raw member hashing otherwise (paper §3.2).
    pub fn contribute_to(&self, acc: &mut MergeAccumulator) {
        match &self.sketch {
            Some(s) => acc.add_sketch(s),
            None => acc.add_raw(self.members.iter().map(|&m| m as u64)),
        }
    }

    /// Heap bytes used by this bucket (member list + sketch registers).
    pub fn memory_bytes(&self) -> usize {
        self.members.capacity() * std::mem::size_of::<PointId>()
            + self.sketch.as_ref().map_or(0, |s| s.memory_bytes())
    }
}

impl Default for Bucket {
    fn default() -> Self {
        Self::new()
    }
}

/// A borrowed view of one bucket: member slice plus optional sketch.
///
/// Both storage backends hand out this type — the hashmap store borrows
/// straight from a [`Bucket`], the frozen store from its register slab —
/// so every query path (single-probe, multi-probe, covering) is
/// backend-agnostic. The sketch is a [`SketchRef`] (config tag + raw
/// register slice), which lets the frozen backend serve sketches with
/// zero per-bucket heap objects.
#[derive(Clone, Copy, Debug)]
pub struct BucketRef<'a> {
    pub(crate) members: &'a [PointId],
    pub(crate) sketch: Option<SketchRef<'a>>,
}

impl<'a> BucketRef<'a> {
    /// Builds a view from raw parts (storage backends only).
    #[inline]
    pub fn from_parts(members: &'a [PointId], sketch: Option<SketchRef<'a>>) -> Self {
        Self { members, sketch }
    }

    /// Number of members (the `#collisions` contribution).
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the bucket is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member point ids.
    #[inline]
    pub fn members(&self) -> &'a [PointId] {
        self.members
    }

    /// The materialised sketch, if any, as a borrowed view.
    #[inline]
    pub fn sketch(&self) -> Option<SketchRef<'a>> {
        self.sketch
    }

    /// Whether the sketch has been materialised.
    #[inline]
    pub fn has_sketch(&self) -> bool {
        self.sketch.is_some()
    }

    /// Contributes this bucket to a query-time merge: register-wise max
    /// straight from the backing registers if the sketch exists, raw
    /// member hashing otherwise (paper §3.2).
    pub fn contribute_to(&self, acc: &mut MergeAccumulator) {
        match self.sketch {
            Some(s) => acc.add_sketch_ref(s),
            None => acc.add_raw(self.members.iter().map(|&m| m as u64)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HllConfig {
        HllConfig::new(7, 123)
    }

    #[test]
    fn small_bucket_has_no_sketch() {
        let mut b = Bucket::new();
        for i in 0..100 {
            b.insert(i, cfg(), 128);
        }
        assert_eq!(b.len(), 100);
        assert!(!b.has_sketch());
    }

    #[test]
    fn sketch_materialises_at_threshold() {
        let mut b = Bucket::new();
        for i in 0..127 {
            b.insert(i, cfg(), 128);
        }
        assert!(!b.has_sketch());
        b.insert(127, cfg(), 128);
        assert!(b.has_sketch());
        // Further inserts keep it up to date.
        b.insert(128, cfg(), 128);
        assert_eq!(b.len(), 129);
    }

    #[test]
    fn lazy_and_eager_buckets_merge_identically() {
        // A bucket below threshold (raw path) and the same bucket above
        // threshold (sketch path) must contribute the same registers.
        let members: Vec<PointId> = (0..200).collect();

        let mut lazy = Bucket::new();
        for &m in &members {
            lazy.insert(m, cfg(), usize::MAX); // never materialise
        }
        let mut eager = Bucket::new();
        for &m in &members {
            eager.insert(m, cfg(), 1); // materialise immediately
        }
        assert!(!lazy.has_sketch());
        assert!(eager.has_sketch());

        let mut acc_lazy = MergeAccumulator::new(cfg());
        lazy.contribute_to(&mut acc_lazy);
        let mut acc_eager = MergeAccumulator::new(cfg());
        eager.contribute_to(&mut acc_eager);
        let (s_lazy, s_eager) = (acc_lazy.into_sketch(), acc_eager.into_sketch());
        assert_eq!(s_lazy.registers(), s_eager.registers());
    }

    #[test]
    fn threshold_one_materialises_on_first_insert() {
        let mut b = Bucket::new();
        b.insert(9, cfg(), 1);
        assert!(b.has_sketch());
        assert_eq!(b.members(), &[9]);
    }

    #[test]
    fn memory_accounting_includes_sketch() {
        let mut small = Bucket::new();
        small.insert(0, cfg(), usize::MAX);
        let mut big = Bucket::new();
        big.insert(0, cfg(), 1);
        assert!(big.memory_bytes() >= small.memory_bytes() + 128);
    }

    #[test]
    fn duplicate_ids_count_as_collisions_but_not_distinct() {
        // The same id inserted twice (cannot happen from Algorithm 1,
        // but the types allow it) grows len but not the sketch estimate.
        let mut b = Bucket::new();
        b.insert(5, cfg(), 1);
        b.insert(5, cfg(), 1);
        assert_eq!(b.len(), 2);
        let mut acc = MergeAccumulator::new(cfg());
        b.contribute_to(&mut acc);
        assert!((acc.estimate() - 1.0).abs() < 0.5);
    }
}
