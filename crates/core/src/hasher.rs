//! A fast `u64`-key hasher for bucket maps.
//!
//! Bucket keys are already well-mixed 64-bit values (sign-bit
//! concatenations or SplitMix64-combined atoms), so the default SipHash
//! would burn cycles re-hashing them defensively. This multiply-fold
//! hasher (the FxHash construction used throughout rustc) is one
//! multiplication per word; HashDoS is not a concern because keys are
//! not attacker-controlled strings but outputs of our own hash
//! functions.

use std::hash::{BuildHasherDefault, Hasher};

/// One-multiplication hasher for integer keys (FxHash construction).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7C_C1_B7_27_22_0A_95;

impl FxHasher {
    #[inline]
    fn add_u64(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_u64(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_u64(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_u64(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by pre-mixed integers.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` of pre-mixed integers.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic() {
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one(42u64), b.hash_one(42u64));
        assert_ne!(b.hash_one(42u64), b.hash_one(43u64));
    }

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 7, i as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 7)), Some(&(i as u32)));
        }
    }

    #[test]
    fn byte_writes_cover_uneven_lengths() {
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 0]);
        // Different logical lengths may or may not collide, but the
        // hasher must not panic and must be deterministic.
        let mut h1b = FxHasher::default();
        h1b.write(&[1, 2, 3]);
        assert_eq!(h1.finish(), h1b.finish());
        let _ = h2.finish();
    }
}
