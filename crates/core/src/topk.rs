//! Top-k nearest-neighbor queries via the classic k-NN ⇒ rNNR
//! reduction over a [`RadiusSchedule`].
//!
//! The paper solves r-near-neighbor reporting; every standard ANN
//! benchmark asks for the k nearest neighbors instead. [`TopKIndex`]
//! bridges the two: it maintains one hybrid rNNR index per schedule
//! level (all levels share one `Arc`-owned copy of the data, each level
//! tunes its LSH family to its own radius), and [`TopKEngine`] walks
//! the levels in ascending-radius order, feeding every newly verified
//! neighbor into a bounded max-heap of `(distance, id)` pairs:
//!
//! 1. **Early exit** — once the heap holds `k` neighbors all within the
//!    previously executed radius, deeper (larger-radius) levels cannot
//!    change the answer and the walk stops.
//! 2. **HLL level skip** — while the heap is still underfull, a level
//!    whose merged-sketch candidate estimate does not exceed the number
//!    of ids already verified is predicted to contain nothing new and
//!    is deferred without running either Algorithm 2 arm. If the walk
//!    ends with the heap underfull, the exact fallback covers whatever
//!    a deferred level held and the deferral becomes a true skip; if
//!    the heap instead fills at a deeper level, the deferred
//!    (predicted-near-empty, hence cheap) levels are revisited so a
//!    wrong prediction can never silently lose a close neighbor.
//! 3. **Exact fallback** — if the whole schedule leaves the heap
//!    underfull (the k-th neighbor lies beyond the last radius), the
//!    remaining points are scanned exactly, so `query_topk` always
//!    returns exactly `min(k, n)` neighbors.
//!
//! Results are deterministic: distance ties break by ascending id, the
//! heap's total order is `(distance, id)`, and
//! [`query_topk_batch`](TopKIndex::query_topk_batch) shards over scoped
//! threads with byte-identical output to a sequential per-query loop —
//! on any thread count and under either [`VerifyMode`].

use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

use hlsh_families::LshFamily;
use hlsh_vec::{Distance, PointId, PointSet};

use crate::builder::IndexBuilder;
use crate::engine::QueryEngine;
use crate::hasher::FxHashSet;
use crate::index::HybridLshIndex;
use crate::schedule::RadiusSchedule;
use crate::search::{Strategy, VerifyMode};
use crate::store::{BucketStore, FrozenStore, MapStore};

/// One verified nearest-neighbor candidate.
///
/// Ordered by `(distance, id)` — [`f64::total_cmp`] on the distance,
/// ascending id on ties — so result rankings are a total order and
/// identical across shard counts, storage backends and verify modes.
#[derive(Clone, Copy, Debug)]
pub struct Neighbor {
    /// Id of the data point.
    pub id: PointId,
    /// Exact distance to the query.
    pub dist: f64,
}

impl PartialEq for Neighbor {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist.total_cmp(&other.dist).then(self.id.cmp(&other.id))
    }
}

/// A bounded max-heap keeping the `k` smallest [`Neighbor`]s seen.
///
/// The root is the current worst kept neighbor under the `(distance,
/// id)` order, so a full heap rejects or admits a new candidate with
/// one comparison. Capacity 0 keeps nothing.
#[derive(Clone, Debug)]
pub struct BoundedHeap {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl BoundedHeap {
    /// Creates a heap keeping at most `k` neighbors.
    pub fn new(k: usize) -> Self {
        Self { k, heap: BinaryHeap::with_capacity(k.saturating_add(1).min(4096)) }
    }

    /// Offers a candidate; keeps it iff the heap is underfull or the
    /// candidate beats the current worst. Returns whether it was kept.
    pub fn push(&mut self, n: Neighbor) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(n);
            true
        } else if self.heap.peek().is_some_and(|&worst| n < worst) {
            self.heap.pop();
            self.heap.push(n);
            true
        } else {
            false
        }
    }

    /// Number of neighbors currently kept.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is kept yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the heap holds its full `k` neighbors.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Distance of the current worst kept neighbor (the k-th best so
    /// far), if any.
    pub fn worst_dist(&self) -> Option<f64> {
        self.heap.peek().map(|n| n.dist)
    }

    /// Consumes the heap into neighbors sorted ascending by
    /// `(distance, id)`.
    pub fn into_sorted_vec(self) -> Vec<Neighbor> {
        self.heap.into_sorted_vec()
    }
}

/// Result of one top-k query: the `min(k, n)` nearest neighbors in
/// ascending `(distance, id)` order, plus instrumentation.
#[derive(Clone, Debug, PartialEq)]
pub struct TopKOutput {
    /// The verified nearest neighbors, closest first.
    pub neighbors: Vec<Neighbor>,
    /// Instrumentation of the schedule walk.
    pub report: TopKReport,
}

impl TopKOutput {
    /// Convenience view of the result ids in rank order.
    pub fn ids(&self) -> Vec<PointId> {
        self.neighbors.iter().map(|n| n.id).collect()
    }
}

/// Instrumentation of one top-k schedule walk.
///
/// Equality compares only the deterministic walk outcome —
/// `total_nanos` is wall-clock noise and is excluded — so
/// `assert_eq!(batch_output, sequential_output)` exercises the
/// byte-identity contract directly.
#[derive(Clone, Copy, Debug)]
pub struct TopKReport {
    /// Levels whose rNNR query actually ran (deferred levels that were
    /// revisited count here, not as skipped).
    pub levels_executed: usize,
    /// Levels whose arms never ran: deferred by the HLL
    /// candidate-count prediction and then covered by the exact
    /// fallback instead of being revisited.
    pub levels_skipped: usize,
    /// Whether the walk stopped before exhausting the schedule because
    /// the heap was full of neighbors within an executed radius.
    pub early_exit: bool,
    /// Whether the exact full-scan fallback ran because the schedule's
    /// last radius still left the heap underfull.
    pub exact_fallback: bool,
    /// Distinct ids whose exact distance was computed on the schedule
    /// path (heap admissions and rejections alike).
    pub verified: usize,
    /// Total wall time of the walk (excluded from equality).
    pub total_nanos: u64,
}

impl PartialEq for TopKReport {
    fn eq(&self, other: &Self) -> bool {
        self.levels_executed == other.levels_executed
            && self.levels_skipped == other.levels_skipped
            && self.early_exit == other.early_exit
            && self.exact_fallback == other.exact_fallback
            && self.verified == other.verified
    }
}

impl Eq for TopKReport {}

/// A family of hybrid rNNR indexes answering top-k queries — one
/// [`HybridLshIndex`] per [`RadiusSchedule`] level, sharing a single
/// copy of the data.
///
/// Build one with [`TopKIndex::build`], handing it a closure that
/// configures the per-level [`IndexBuilder`] (typically: a p-stable
/// family with hash width proportional to the level radius, or a
/// sign-bit family with the δ-rule concatenation width for that
/// radius). [`freeze`](TopKIndex::freeze) converts every level to the
/// read-optimised CSR arena for serving.
pub struct TopKIndex<S, F, D, B = MapStore>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
    B: BucketStore,
{
    data: Arc<S>,
    schedule: RadiusSchedule,
    levels: Vec<HybridLshIndex<Arc<S>, F, D, B>>,
}

impl<S, F, D> TopKIndex<S, F, D, MapStore>
where
    S: PointSet + Send + Sync,
    F: LshFamily<S::Point>,
    F::GFn: Send,
    D: Distance<S::Point>,
{
    /// Builds one hybrid index per schedule level over a shared copy of
    /// `data`.
    ///
    /// `level_builder(level, radius)` returns the fully configured
    /// [`IndexBuilder`] for that level; radius-dependent knobs (hash
    /// width `w`, concatenation width `k`) belong in the closure.
    pub fn build<M>(data: S, schedule: RadiusSchedule, level_builder: M) -> Self
    where
        M: FnMut(usize, f64) -> IndexBuilder<F, D>,
    {
        Self::build_mapped(data, schedule, level_builder, None)
    }

    /// [`build`](Self::build) with the sharded build's id renaming
    /// applied to every level (see
    /// [`IndexBuilder::build_mapped`](crate::builder::IndexBuilder)):
    /// row `i` is indexed under `id_map[i]` in every level's buckets
    /// and sketches.
    pub(crate) fn build_mapped<M>(
        data: S,
        schedule: RadiusSchedule,
        mut level_builder: M,
        id_map: Option<&[PointId]>,
    ) -> Self
    where
        M: FnMut(usize, f64) -> IndexBuilder<F, D>,
    {
        let data = Arc::new(data);
        let levels = schedule
            .radii()
            .enumerate()
            .map(|(li, r)| level_builder(li, r).build_mapped(Arc::clone(&data), id_map))
            .collect();
        Self { data, schedule, levels }
    }

    /// Freezes every level into the read-optimised [`FrozenStore`];
    /// query results are byte-identical before and after.
    pub fn freeze(self) -> TopKIndex<S, F, D, FrozenStore> {
        TopKIndex {
            data: self.data,
            schedule: self.schedule,
            levels: self.levels.into_iter().map(HybridLshIndex::freeze).collect(),
        }
    }
}

impl<S, F, D> TopKIndex<S, F, D, FrozenStore>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
{
    /// Converts every level back to the mutable [`MapStore`] backend.
    pub fn thaw(self) -> TopKIndex<S, F, D, MapStore> {
        TopKIndex {
            data: self.data,
            schedule: self.schedule,
            levels: self.levels.into_iter().map(HybridLshIndex::thaw).collect(),
        }
    }

    /// Reassembles a ladder from already-built levels — the snapshot
    /// loader's entry point. Every level must index `data` (the loader
    /// hands each level the same `Arc`).
    ///
    /// # Panics
    /// Panics if the level count disagrees with the schedule or a level
    /// indexes a different data handle.
    pub(crate) fn assemble(
        data: Arc<S>,
        schedule: RadiusSchedule,
        levels: Vec<HybridLshIndex<Arc<S>, F, D, FrozenStore>>,
    ) -> Self {
        assert_eq!(levels.len(), schedule.levels(), "one level per schedule radius");
        for level in &levels {
            assert!(Arc::ptr_eq(level.data(), &data), "levels must share the ladder's data");
        }
        Self { data, schedule, levels }
    }
}

impl<S, F, D, B> TopKIndex<S, F, D, B>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
    B: BucketStore,
{
    /// The shared indexed data set.
    pub fn data(&self) -> &S {
        self.data.as_ref()
    }

    /// Number of indexed points `n`.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The radius schedule the levels were built for.
    pub fn schedule(&self) -> RadiusSchedule {
        self.schedule
    }

    /// The per-level hybrid indexes, in ascending-radius order.
    pub fn levels(&self) -> &[HybridLshIndex<Arc<S>, F, D, B>] {
        &self.levels
    }

    /// The distance function (shared by every level).
    pub fn distance(&self) -> &D {
        self.levels[0].distance()
    }

    /// Per-level bucket/sketch statistics, in ascending-radius order
    /// (each level is a full index of its own; sum the entries for the
    /// family's total footprint).
    pub fn stats_per_level(&self) -> Vec<crate::index::IndexStats> {
        self.levels.iter().map(HybridLshIndex::stats).collect()
    }

    /// Answers one top-k query with fresh scratch. Batch workloads
    /// should prefer [`query_topk_batch`](Self::query_topk_batch) or a
    /// reused [`TopKEngine`].
    pub fn query_topk(&self, q: &S::Point, k: usize) -> TopKOutput {
        TopKEngine::new().query_topk(self, q, k)
    }
}

impl<S, F, D, B> TopKIndex<S, F, D, B>
where
    S: PointSet + Send + Sync,
    F: LshFamily<S::Point> + Sync,
    F::GFn: Sync,
    D: Distance<S::Point> + Sync,
    B: BucketStore + Sync,
{
    /// Answers a batch of top-k queries, sharded across all available
    /// cores. Outputs are in input order and byte-identical to a
    /// sequential [`query_topk`](Self::query_topk) loop.
    pub fn query_topk_batch<Q>(&self, queries: &[Q], k: usize) -> Vec<TopKOutput>
    where
        Q: AsRef<S::Point> + Sync,
    {
        self.query_topk_batch_with(queries, k, Strategy::Hybrid, None)
    }

    /// Batch top-k under an explicit per-level strategy and optional
    /// thread count (`None` = all available cores).
    pub fn query_topk_batch_with<Q>(
        &self,
        queries: &[Q],
        k: usize,
        strategy: Strategy,
        threads: Option<usize>,
    ) -> Vec<TopKOutput>
    where
        Q: AsRef<S::Point> + Sync,
    {
        hlsh_vec::parallel::par_map_with(queries.len(), threads, TopKEngine::new, |engine, qi| {
            engine.query_topk_with(self, queries[qi].as_ref(), k, strategy)
        })
    }
}

/// Reusable scratch for running top-k queries: the inner rNNR
/// [`QueryEngine`] plus the cross-level dedup set.
///
/// One engine serves one thread; results are identical to the
/// allocate-per-query path.
#[derive(Debug, Default)]
pub struct TopKEngine {
    engine: QueryEngine,
    reported: FxHashSet<PointId>,
}

impl TopKEngine {
    /// Creates an engine with empty scratch and the default
    /// [`VerifyMode::Kernel`] rNNR filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine whose inner rNNR queries verify candidates in
    /// an explicit [`VerifyMode`]. Top-k output is identical across
    /// modes — the mode only changes how the radius filter is computed.
    pub fn with_verify_mode(verify: VerifyMode) -> Self {
        Self { engine: QueryEngine::with_verify_mode(verify), reported: FxHashSet::default() }
    }

    /// Answers one top-k query under the default per-level
    /// [`Strategy::Hybrid`].
    pub fn query_topk<S, F, D, B>(
        &mut self,
        index: &TopKIndex<S, F, D, B>,
        q: &S::Point,
        k: usize,
    ) -> TopKOutput
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        self.query_topk_with(index, q, k, Strategy::Hybrid)
    }

    /// Answers one top-k query, running every executed level's rNNR
    /// query under `strategy`.
    pub fn query_topk_with<S, F, D, B>(
        &mut self,
        index: &TopKIndex<S, F, D, B>,
        q: &S::Point,
        k: usize,
        strategy: Strategy,
    ) -> TopKOutput
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        let t_start = Instant::now();
        let n = index.len();
        let k_eff = k.min(n);
        let mut report = TopKReport {
            levels_executed: 0,
            levels_skipped: 0,
            early_exit: false,
            exact_fallback: false,
            verified: 0,
            total_nanos: 0,
        };
        if k_eff == 0 {
            report.total_nanos = t_start.elapsed().as_nanos() as u64;
            return TopKOutput { neighbors: Vec::new(), report };
        }

        let mut heap = BoundedHeap::new(k_eff);
        self.reported.clear();
        let (data, distance) = (index.data(), index.distance());
        // Largest radius whose level actually executed: inside it the
        // reporting guarantee holds (exactly, whenever the level ran
        // the linear arm; with LSH's 1−δ probability otherwise).
        let mut covered_r = 0.0_f64;
        // Levels deferred by the HLL prediction, revisited below if the
        // heap fills without them.
        let mut deferred: Vec<usize> = Vec::new();

        for (li, (level, r)) in index.levels().iter().zip(index.schedule.radii()).enumerate() {
            if report.levels_executed > 0 {
                // Early exit: k neighbors within an executed radius
                // (heap entries come from within-radius reports, so a
                // full heap always satisfies `worst ≤ covered_r`) means
                // larger radii cannot improve the heap.
                if heap.is_full() && heap.worst_dist().is_some_and(|w| w <= covered_r) {
                    report.early_exit = true;
                    break;
                }
            }
            // HLL defer (underfull heap only — a full heap early-exited
            // above): a level whose merged sketches predict no
            // candidates beyond the ids already verified cannot feed
            // the heap anything new, so neither Algorithm 2 arm runs
            // now. Level candidate sets overlap heavily across radii —
            // the same near-duplicates keep colliding — so this fires
            // on sparse-neighborhood queries climbing the ladder.
            // Probing and estimation are shared with the executed
            // query, so a non-deferred level pays nothing extra; and
            // because the prediction inherits the sketch's estimation
            // error, a deferred level is revisited below rather than
            // dropped whenever its absence could change the answer.
            let skip_at_most = if report.levels_executed > 0 {
                // One standard error of sketch slack (σ ≈ 1.04/√m):
                // even when a level truly holds nothing new, its
                // estimate lands slightly above the verified count
                // (small-range linear counting rounds up), so an exact
                // threshold would never fire.
                let m = level.hll_config().registers() as f64;
                self.reported.len() as f64 * (1.0 + 1.04 / m.sqrt())
            } else {
                f64::NEG_INFINITY // level 0 always runs
            };
            // Distance-returning level query: every reported id arrives
            // with the exact distance its verification kernel already
            // computed, so nothing is recomputed per id below.
            let out = match self.engine.query_unless_cand_at_most_dist(
                level,
                q,
                r,
                strategy,
                skip_at_most,
            ) {
                None => {
                    deferred.push(li);
                    continue;
                }
                Some(out) => out,
            };
            report.levels_executed += 1;
            covered_r = r;
            for &(id, dist) in &out.pairs {
                if self.reported.insert(id) {
                    heap.push(Neighbor { id, dist });
                }
            }
        }

        if heap.len() < k_eff {
            // The schedule ran dry with fewer than k neighbors: finish
            // exactly. Every id in `reported` was admitted (rejections
            // only happen once the heap is full), so only the rest are
            // scanned — which also covers anything a deferred level
            // would have found, so those levels were skipped outright.
            // The scan is one distance-returning kernel pass over the
            // whole set (r = ∞); already-reported ids are filtered out
            // afterwards (their distances are a negligible fraction of
            // the pass and the kernel throughput more than pays for
            // them versus n per-id scalar distance calls).
            report.exact_fallback = true;
            report.levels_skipped = deferred.len();
            fallback_scan_into(
                data,
                distance,
                q,
                self.engine.verify_mode(),
                &self.reported,
                &mut heap,
                |local| local,
            );
        } else if !deferred.is_empty() {
            // The heap filled at deeper levels while earlier levels
            // were deferred on a prediction that can be wrong (sketch
            // error, non-nested level candidate sets). A missed closer
            // neighbor would now be unrecoverable, so revisit the
            // deferred levels — each was predicted near-empty, so this
            // is cheap, and it restores the no-silent-loss property.
            for li in deferred {
                let out = self.engine.query_with_strategy_dist(
                    &index.levels()[li],
                    q,
                    index.schedule.radius(li),
                    strategy,
                );
                report.levels_executed += 1;
                for &(id, dist) in &out.pairs {
                    if self.reported.insert(id) {
                        heap.push(Neighbor { id, dist });
                    }
                }
            }
        }

        report.verified = self.reported.len();
        report.total_nanos = t_start.elapsed().as_nanos() as u64;
        TopKOutput { neighbors: heap.into_sorted_vec(), report }
    }
}

/// The exact fallback's scan, shared by the unsharded and sharded
/// engines: one distance-returning full pass (`r = ∞`) over `data`,
/// offering every unreported row to the heap. Rows the scan's
/// `d <= r` filter dropped — only possible when the distance is NaN,
/// nothing else fails at `r = ∞` — appear as gaps in the scan's
/// ascending row order and are offered via direct `distance()` calls,
/// so the fallback's exactly-`min(k, n)`-results guarantee holds even
/// for degenerate (NaN-coordinate) points, exactly as the pre-kernel
/// per-id loop did ([`Neighbor`]'s `total_cmp` order ranks NaN last).
/// `to_global` maps a scanned row to its reported id (identity here,
/// the owner lookup for shards).
pub(crate) fn fallback_scan_into<S, D>(
    data: &S,
    distance: &D,
    q: &S::Point,
    verify: VerifyMode,
    reported: &FxHashSet<PointId>,
    heap: &mut BoundedHeap,
    mut to_global: impl FnMut(PointId) -> PointId,
) where
    S: PointSet + ?Sized,
    D: Distance<S::Point>,
{
    for (local, dist) in fallback_scan_pairs(data, distance, q, verify) {
        let id = to_global(local);
        if !reported.contains(&id) {
            heap.push(Neighbor { id, dist });
        }
    }
}

/// The pair enumeration under [`fallback_scan_into`], split out so a
/// shard node can ship the full `(local row, distance)` list over the
/// wire and let a remote coordinator do the `reported` filtering: every
/// row of `data` exactly once, ascending, NaN-distance gaps completed
/// by direct `distance()` calls.
pub(crate) fn fallback_scan_pairs<S, D>(
    data: &S,
    distance: &D,
    q: &S::Point,
    verify: VerifyMode,
) -> Vec<(PointId, f64)>
where
    S: PointSet + ?Sized,
    D: Distance<S::Point>,
{
    let n = data.len();
    let mut pairs = Vec::with_capacity(n);
    match verify {
        VerifyMode::Kernel => distance.scan_within_dist(data, q, f64::INFINITY, &mut pairs),
        VerifyMode::Scalar => {
            hlsh_vec::metric::scan_scalar_dist(distance, data, q, f64::INFINITY, &mut pairs)
        }
    }
    if pairs.len() == n {
        // No NaN gaps: the ∞-radius scan already enumerated 0..n
        // ascending.
        return pairs;
    }
    let mut full = Vec::with_capacity(n);
    let mut next = 0 as PointId;
    for (local, dist) in pairs {
        while next < local {
            full.push((next, distance.distance(data.point(next as usize), q)));
            next += 1;
        }
        full.push((local, dist));
        next = local + 1;
    }
    while (next as usize) < n {
        full.push((next, distance.distance(data.point(next as usize), q)));
        next += 1;
    }
    full
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use hlsh_families::PStableL2;
    use hlsh_vec::{DenseDataset, L2};

    fn line_index(n: usize, levels: usize) -> TopKIndex<DenseDataset, PStableL2, L2> {
        let data = DenseDataset::from_rows(2, (0..n).map(|i| [i as f32, 0.0]));
        TopKIndex::build(data, RadiusSchedule::doubling(1.0, levels), |_, r| {
            IndexBuilder::new(PStableL2::new(2, 2.0 * r), L2)
                .tables(8)
                .hash_len(4)
                .seed(7)
                .cost_model(CostModel::from_ratio(4.0))
        })
    }

    #[test]
    fn neighbor_order_breaks_ties_by_id() {
        let a = Neighbor { id: 3, dist: 1.0 };
        let b = Neighbor { id: 5, dist: 1.0 };
        let c = Neighbor { id: 1, dist: 2.0 };
        assert!(a < b);
        assert!(b < c);
        let mut v = [c, b, a];
        v.sort();
        assert_eq!(v.iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 5, 1]);
    }

    #[test]
    fn bounded_heap_keeps_k_smallest() {
        let mut h = BoundedHeap::new(3);
        assert!(h.is_empty());
        for (id, dist) in [(0, 5.0), (1, 1.0), (2, 4.0), (3, 2.0), (4, 3.0)] {
            h.push(Neighbor { id, dist });
        }
        assert!(h.is_full());
        assert_eq!(h.worst_dist(), Some(3.0));
        let out = h.into_sorted_vec();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 3, 4]);
    }

    #[test]
    fn report_equality_ignores_wall_time() {
        let a = TopKReport {
            levels_executed: 2,
            levels_skipped: 1,
            early_exit: true,
            exact_fallback: false,
            verified: 9,
            total_nanos: 1,
        };
        let b = TopKReport { total_nanos: 999_999, ..a };
        assert_eq!(a, b);
        assert_ne!(a, TopKReport { verified: 10, ..a });
    }

    #[test]
    fn bounded_heap_capacity_zero_keeps_nothing() {
        let mut h = BoundedHeap::new(0);
        assert!(!h.push(Neighbor { id: 0, dist: 0.0 }));
        assert!(h.is_full());
        assert!(h.into_sorted_vec().is_empty());
    }

    #[test]
    fn topk_on_a_line_is_exact() {
        let index = line_index(200, 4);
        let out = index.query_topk(&[50.0f32, 0.0][..], 5);
        assert_eq!(out.neighbors.len(), 5);
        // Nearest is the point itself, then the symmetric pairs; the
        // (dist, id) order puts the smaller id first on each tie.
        let ids: Vec<PointId> = out.ids();
        assert_eq!(ids, vec![50, 49, 51, 48, 52]);
        assert_eq!(out.neighbors[0].dist, 0.0);
        assert_eq!(out.neighbors[1].dist, 1.0);
    }

    #[test]
    fn exact_fallback_keeps_min_k_n_even_with_nan_rows() {
        // A NaN-coordinate row has NaN distance to everything; the
        // fallback's ∞-radius scan filter drops it (NaN <= ∞ is
        // false), so the gap-completion path must offer it anyway —
        // the min(k, n) guarantee ranks it last via total_cmp, exactly
        // like the pre-kernel per-id fallback loop did.
        let mut rows: Vec<[f32; 2]> = (0..12).map(|i| [i as f32, 0.0]).collect();
        rows[3] = [f32::NAN, 0.0];
        rows[11] = [f32::NAN, 1.0];
        let data = DenseDataset::from_rows(2, rows);
        let index = TopKIndex::build(data, RadiusSchedule::doubling(1.0, 2), |_, r| {
            IndexBuilder::new(PStableL2::new(2, 2.0 * r), L2)
                .tables(4)
                .hash_len(3)
                .seed(2)
                .cost_model(CostModel::from_ratio(1e9)) // always the LSH arm
        });
        let out = index.query_topk(&[0.0f32, 0.0][..], 12);
        assert!(out.report.exact_fallback, "report: {:?}", out.report);
        assert_eq!(out.neighbors.len(), 12, "k = n must return every point");
        // NaN rows rank last, ties by id.
        assert_eq!(out.neighbors[10].id, 3);
        assert_eq!(out.neighbors[11].id, 11);
        assert!(out.neighbors[10].dist.is_nan() && out.neighbors[11].dist.is_nan());
        // Scalar verify mode agrees.
        let scalar = TopKEngine::with_verify_mode(VerifyMode::Scalar).query_topk(
            &index,
            &[0.0f32, 0.0][..],
            12,
        );
        assert_eq!(scalar.neighbors.len(), 12);
    }

    #[test]
    fn k_larger_than_n_returns_everything() {
        let index = line_index(30, 3);
        let out = index.query_topk(&[3.0f32, 0.0][..], 100);
        assert_eq!(out.neighbors.len(), 30);
        assert!(out.report.exact_fallback);
        // Sorted ascending by distance.
        assert!(out.neighbors.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn k_zero_and_empty_index() {
        let index = line_index(10, 2);
        let out = index.query_topk(&[0.0f32, 0.0][..], 0);
        assert!(out.neighbors.is_empty());
        assert_eq!(out.report.levels_executed, 0);

        let empty: TopKIndex<DenseDataset, PStableL2, L2> =
            TopKIndex::build(DenseDataset::new(2), RadiusSchedule::doubling(1.0, 2), |_, r| {
                IndexBuilder::new(PStableL2::new(2, 2.0 * r), L2)
                    .tables(2)
                    .hash_len(2)
                    .seed(1)
                    .cost_model(CostModel::from_ratio(1.0))
            });
        let out = empty.query_topk(&[0.0f32, 0.0][..], 4);
        assert!(out.neighbors.is_empty());
    }

    #[test]
    fn batch_matches_sequential_loop() {
        let index = line_index(300, 4);
        let queries: Vec<Vec<f32>> = (0..24).map(|i| vec![(i * 12) as f32 + 0.3, 0.0]).collect();
        let mut engine = TopKEngine::new();
        let sequential: Vec<TopKOutput> =
            queries.iter().map(|q| engine.query_topk(&index, q, 7)).collect();
        for threads in [Some(1), Some(3), Some(5), None] {
            let batch = index.query_topk_batch_with(&queries, 7, Strategy::Hybrid, threads);
            // TopKReport equality excludes wall time, so whole-output
            // equality is exactly the determinism contract.
            assert_eq!(batch, sequential, "threads {threads:?}");
        }
    }

    #[test]
    fn frozen_matches_map_backend() {
        let index = line_index(250, 3);
        let queries: Vec<Vec<f32>> = (0..16).map(|i| vec![(i * 15) as f32, 0.0]).collect();
        let map_out = index.query_topk_batch(&queries, 6);
        let frozen = index.freeze();
        let frozen_out = frozen.query_topk_batch(&queries, 6);
        assert_eq!(map_out, frozen_out, "frozen vs map");
        let thawed = frozen.thaw();
        assert_eq!(thawed.query_topk_batch(&queries, 6), map_out, "thawed vs map");
    }

    #[test]
    fn verify_modes_agree() {
        let index = line_index(220, 3);
        let mut kernel = TopKEngine::with_verify_mode(VerifyMode::Kernel);
        let mut scalar = TopKEngine::with_verify_mode(VerifyMode::Scalar);
        for i in 0..12 {
            let q = [(i * 17) as f32 + 0.5, 0.4];
            let a = kernel.query_topk(&index, &q[..], 9);
            let b = scalar.query_topk(&index, &q[..], 9);
            assert_eq!(a.neighbors, b.neighbors, "query {i}");
        }
    }

    #[test]
    fn deferred_levels_become_true_skips_under_the_exact_fallback() {
        // A 5-duplicate cluster at the query and a background too far
        // to ever collide: level 0 verifies the 5, deeper levels
        // estimate the same ≤ 5 candidates and are deferred, the heap
        // stays underfull (k = 8 > 5), and the exact fallback both
        // completes the answer and converts the deferrals into true
        // skips. The output must equal the brute-force top-k exactly.
        let mut rows: Vec<[f32; 2]> = (0..5).map(|_| [0.0f32, 0.0]).collect();
        rows.extend((0..120).map(|i| [1e5 + (i as f32) * 1e4, 7e4]));
        let data = DenseDataset::from_rows(2, rows.clone());
        let index = TopKIndex::build(data, RadiusSchedule::doubling(1.0, 4), |_, r| {
            IndexBuilder::new(PStableL2::new(2, 2.0 * r), L2)
                .tables(8)
                .hash_len(4)
                .seed(5)
                .cost_model(CostModel::from_ratio(1e9)) // always the LSH arm
        });
        let q = [0.0f32, 0.0];
        let out = index.query_topk(&q[..], 8);
        assert!(out.report.exact_fallback, "report: {:?}", out.report);
        assert!(out.report.levels_skipped > 0, "report: {:?}", out.report);
        assert_eq!(
            out.report.levels_skipped + out.report.levels_executed,
            4,
            "report: {:?}",
            out.report
        );
        // Exactness despite the skips.
        let mut truth: Vec<Neighbor> = rows
            .iter()
            .enumerate()
            .map(|(id, p)| Neighbor { id: id as PointId, dist: L2.distance(p, &q) })
            .collect();
        truth.sort();
        truth.truncate(8);
        assert_eq!(out.neighbors, truth);
    }

    #[test]
    fn deferred_levels_are_revisited_when_the_heap_fills_late() {
        // Level 0 verifies a 4-duplicate cluster (heap 4/6, underfull);
        // mid levels see the same ≤ 4 candidates and are deferred; the
        // last level's wide hashes finally pick up the mid-distance
        // band and fill the heap. The deferred levels must then be
        // revisited (counted as executed, not skipped) so a wrong
        // prediction can never silently lose a close neighbor.
        let mut rows: Vec<[f32; 2]> = (0..4).map(|_| [0.0f32, 0.0]).collect();
        rows.extend((0..80).map(|i| [20.0 + (i % 8) as f32 * 0.3, (i / 8) as f32 * 0.3]));
        let data = DenseDataset::from_rows(2, rows);
        let index = TopKIndex::build(data, RadiusSchedule::doubling(1.0, 6), |_, r| {
            IndexBuilder::new(PStableL2::new(2, 2.0 * r), L2)
                .tables(8)
                .hash_len(4)
                .seed(9)
                .cost_model(CostModel::from_ratio(1e9)) // always the LSH arm
        });
        let q = [0.0f32, 0.0];
        let out = index.query_topk(&q[..], 6);
        assert_eq!(out.neighbors.len(), 6);
        assert!(!out.report.exact_fallback, "report: {:?}", out.report);
        // Every deferred level was revisited: nothing may stay skipped
        // once the heap is full.
        assert_eq!(out.report.levels_skipped, 0, "report: {:?}", out.report);
        assert!(out.report.levels_executed >= 3, "report: {:?}", out.report);
        // The 4 duplicates rank first, then the nearest band points.
        assert_eq!(&out.ids()[..4], &[0, 1, 2, 3]);
    }

    #[test]
    fn early_exit_fires_on_dense_neighborhoods() {
        // 40 duplicates at the query point: level 0 already reports
        // k=5 neighbors at distance 0 ≤ r₀, so the walk must stop
        // after one executed level.
        let mut rows: Vec<[f32; 2]> = (0..40).map(|_| [5.0f32, 5.0]).collect();
        rows.extend((0..160).map(|i| [i as f32 * 10.0 + 100.0, 0.0]));
        let data = DenseDataset::from_rows(2, rows);
        let index = TopKIndex::build(data, RadiusSchedule::doubling(1.0, 4), |_, r| {
            IndexBuilder::new(PStableL2::new(2, 2.0 * r), L2)
                .tables(8)
                .hash_len(4)
                .seed(3)
                .cost_model(CostModel::from_ratio(4.0))
        });
        let out = index.query_topk(&[5.0f32, 5.0][..], 5);
        assert_eq!(out.neighbors.len(), 5);
        assert!(out.report.early_exit, "report: {:?}", out.report);
        assert_eq!(out.report.levels_executed, 1);
        assert!(!out.report.exact_fallback);
        assert!(out.neighbors.iter().all(|n| n.dist == 0.0));
        // Tie-break: the five smallest ids among the duplicates.
        assert_eq!(out.ids(), vec![0, 1, 2, 3, 4]);
    }
}
