//! Per-query instrumentation.
//!
//! Every query returns a [`QueryReport`] alongside its result ids. The
//! report carries exactly the quantities the paper's evaluation needs:
//! Table 1 reads `hll_nanos / total_nanos` (relative HLL cost) and
//! `cand_size_estimate` vs `cand_size_actual` (relative error);
//! Figure 3 (right) reads the executed arm.

use crate::search::ExecutedArm;
use hlsh_vec::PointId;

/// Result ids plus instrumentation for one query.
#[derive(Clone, Debug)]
pub struct QueryOutput {
    /// Ids of reported points (distance ≤ r from the query).
    pub ids: Vec<PointId>,
    /// Instrumentation.
    pub report: QueryReport,
}

/// Instrumentation of one query execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryReport {
    /// Which arm actually ran.
    pub executed: ExecutedArm,
    /// Total collisions over the `L` probed buckets (Step S2 volume).
    pub collisions: usize,
    /// HLL estimate of the distinct candidate count.
    pub cand_size_estimate: f64,
    /// Exact distinct candidate count, when the LSH arm ran
    /// (`None` after a linear scan, which never forms a candidate set).
    pub cand_size_actual: Option<usize>,
    /// Number of reported near neighbors (output size).
    pub output_size: usize,
    /// Wall time of hash computation + bucket lookup (Step S1).
    pub hash_nanos: u64,
    /// Wall time of HLL merging + estimation (the hybrid overhead,
    /// `O(mL)`).
    pub hll_nanos: u64,
    /// Total query wall time.
    pub total_nanos: u64,
}

impl QueryReport {
    /// Fraction of query time spent in the HLL machinery (Table 1's
    /// "% Cost" row).
    pub fn hll_cost_fraction(&self) -> f64 {
        if self.total_nanos == 0 {
            0.0
        } else {
            self.hll_nanos as f64 / self.total_nanos as f64
        }
    }

    /// Relative error of the candidate-set-size estimate (Table 1's
    /// "% Error" row); `None` when the exact size is unknown (linear
    /// arm) or zero.
    pub fn cand_size_relative_error(&self) -> Option<f64> {
        let actual = self.cand_size_actual?;
        if actual == 0 {
            return None;
        }
        Some((self.cand_size_estimate - actual as f64).abs() / actual as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> QueryReport {
        QueryReport {
            executed: ExecutedArm::Lsh,
            collisions: 500,
            cand_size_estimate: 95.0,
            cand_size_actual: Some(100),
            output_size: 10,
            hash_nanos: 1_000,
            hll_nanos: 2_000,
            total_nanos: 100_000,
        }
    }

    #[test]
    fn hll_fraction() {
        assert!((base().hll_cost_fraction() - 0.02).abs() < 1e-12);
        let zero = QueryReport { total_nanos: 0, ..base() };
        assert_eq!(zero.hll_cost_fraction(), 0.0);
    }

    #[test]
    fn relative_error() {
        assert!((base().cand_size_relative_error().unwrap() - 0.05).abs() < 1e-12);
        let linear = QueryReport { cand_size_actual: None, ..base() };
        assert_eq!(linear.cand_size_relative_error(), None);
        let empty = QueryReport { cand_size_actual: Some(0), ..base() };
        assert_eq!(empty.cand_size_relative_error(), None);
    }
}
