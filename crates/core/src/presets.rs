//! The canonical mixture-serving parameterisation.
//!
//! The `serve` binary and the `throughput`/`topk`/`snapshot` bench
//! binaries all index the same `benchmark_mixture` corpus with the
//! same builder settings, so their numbers are directly comparable
//! (a socket-path measurement against `serve` can be read next to an
//! in-process `BENCH_*.json` baseline). Those settings used to be
//! copy-pasted per binary; [`MixturePreset`] is now the single source
//! of truth, and it is what the serve binary checks a snapshot's
//! [`SnapshotManifest`] against before trusting a file.

use crate::builder::IndexBuilder;
use crate::cost::CostModel;
use crate::schedule::RadiusSchedule;
use crate::segmented::{SegmentedIndex, SegmentedTopKIndex};
use crate::sharded::{ShardAssignment, ShardedIndex, ShardedTopKIndex};
use crate::snapshot::codec::{SnapshotDistance, SnapshotFamily};
use crate::snapshot::SnapshotManifest;
use crate::store::FrozenStore;
use hlsh_families::PStableL2;
use hlsh_vec::{DenseDataset, PointId, L2};

/// The standard mixture-workload serving configuration: an L2
/// p-stable family over the `benchmark_mixture` corpus, sharded, with
/// an optional top-k ladder. Field defaults mirror the historical
/// `serve` CLI defaults.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixturePreset {
    /// Corpus size.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Master seed: shard assignment, sampling and data generation.
    pub seed: u64,
    /// Shard count.
    pub shards: usize,
    /// Top-k schedule levels (ignored when no ladder is built).
    pub levels: usize,
    /// Mixture cluster radius; also the base of the top-k schedule.
    pub radius: f64,
}

impl Default for MixturePreset {
    fn default() -> Self {
        Self { n: 20_000, dim: 24, seed: 23, shards: 2, levels: 4, radius: 1.5 }
    }
}

impl MixturePreset {
    /// Hash tables per index.
    pub const TABLES: usize = 20;
    /// Hash width of the rNNR index.
    pub const RNNR_HASH_LEN: usize = 7;
    /// Hash width of each top-k ladder level.
    pub const TOPK_HASH_LEN: usize = 6;
    /// β/α ratio of the cost model.
    pub const COST_RATIO: f64 = 6.0;

    /// The shard assignment this preset serves under.
    pub fn assignment(&self) -> ShardAssignment {
        ShardAssignment::new(self.seed, self.shards)
    }

    /// The top-k radius schedule (doubling from `radius`).
    pub fn schedule(&self) -> RadiusSchedule {
        RadiusSchedule::doubling(self.radius, self.levels)
    }

    /// Builder for the rNNR index at the preset's serving radius.
    pub fn rnnr_builder(&self) -> IndexBuilder<PStableL2, L2> {
        IndexBuilder::new(PStableL2::new(self.dim, 2.0 * self.radius), L2)
            .tables(Self::TABLES)
            .hash_len(Self::RNNR_HASH_LEN)
            .seed(self.seed)
            .cost_model(CostModel::from_ratio(Self::COST_RATIO))
    }

    /// Builder for one top-k ladder level at radius `r`.
    pub fn level_builder(&self, r: f64) -> IndexBuilder<PStableL2, L2> {
        IndexBuilder::new(PStableL2::new(self.dim, 2.0 * r), L2)
            .tables(Self::TABLES)
            .hash_len(Self::TOPK_HASH_LEN)
            .seed(self.seed)
            .cost_model(CostModel::from_ratio(Self::COST_RATIO))
    }

    /// Builds the frozen sharded rNNR index over `data`.
    pub fn build_rnnr(
        &self,
        data: DenseDataset,
    ) -> ShardedIndex<DenseDataset, PStableL2, L2, FrozenStore> {
        ShardedIndex::build_frozen(data, self.assignment(), self.rnnr_builder())
    }

    /// Builds the frozen sharded top-k ladder over `data`.
    pub fn build_topk(
        &self,
        data: DenseDataset,
    ) -> ShardedTopKIndex<DenseDataset, PStableL2, L2, FrozenStore> {
        ShardedTopKIndex::build(data, self.assignment(), self.schedule(), |_, r| {
            self.level_builder(r)
        })
        .freeze()
    }

    /// Builds the LSM-segmented (living) rNNR index over `data` with
    /// global ids `0..n` — same parameters as [`build_rnnr`]
    /// (same seed, assignment, cost model), so its answers are
    /// byte-identical to the frozen build until the first mutation,
    /// and byte-identical to a rebuild on the survivors after.
    ///
    /// [`build_rnnr`]: Self::build_rnnr
    pub fn build_live_rnnr(&self, data: DenseDataset) -> SegmentedIndex<PStableL2, L2> {
        let ids: Vec<PointId> = (0..data.len() as PointId).collect();
        SegmentedIndex::build_bulk(data, &ids, self.assignment(), self.rnnr_builder())
    }

    /// Builds the LSM-segmented (living) top-k ladder over `data` with
    /// global ids `0..n`; the living twin of
    /// [`build_topk`](Self::build_topk).
    pub fn build_live_topk(&self, data: DenseDataset) -> SegmentedTopKIndex<PStableL2, L2> {
        let ids: Vec<PointId> = (0..data.len() as PointId).collect();
        SegmentedTopKIndex::build_bulk(data, &ids, self.assignment(), self.schedule(), |_, r| {
            self.level_builder(r)
        })
    }

    /// Fails fast when a snapshot's manifest disagrees with this
    /// preset — before any section is read. `want_topk` is whether the
    /// caller intends to serve top-k queries; a snapshot may carry a
    /// ladder the caller then ignores, but a missing ladder cannot be
    /// conjured at load time.
    pub fn check_manifest(
        &self,
        manifest: &SnapshotManifest,
        want_topk: bool,
    ) -> Result<(), String> {
        let mut mismatches = Vec::new();
        let mut expect = |what: &str, want: String, got: String| {
            if want != got {
                mismatches.push(format!("{what}: snapshot has {got}, CLI wants {want}"));
            }
        };
        expect(
            "family",
            <PStableL2 as SnapshotFamily>::TAG.to_string(),
            manifest.family_tag.to_string(),
        );
        expect(
            "distance",
            <L2 as SnapshotDistance>::TAG.to_string(),
            manifest.distance_tag.to_string(),
        );
        expect("n", self.n.to_string(), manifest.n.to_string());
        expect("dim", self.dim.to_string(), manifest.dim.to_string());
        expect("seed", self.seed.to_string(), manifest.seed.to_string());
        expect("shards", self.shards.to_string(), manifest.shards.to_string());
        expect("tables", Self::TABLES.to_string(), manifest.tables.to_string());
        expect("hash_len", Self::RNNR_HASH_LEN.to_string(), manifest.k.to_string());
        match (&manifest.topk, want_topk) {
            (None, true) => {
                mismatches.push("top-k: snapshot has no ladder; pass --no-topk".to_string())
            }
            (Some(tk), true) => {
                expect("levels", self.levels.to_string(), tk.levels.to_string());
                expect("schedule base", format!("{}", self.radius), format!("{}", tk.base));
                expect("schedule ratio", "2".to_string(), format!("{}", tk.ratio));
            }
            // A present-but-unwanted ladder is fine: the caller drops it.
            (_, false) => {}
        }
        if mismatches.is_empty() {
            Ok(())
        } else {
            Err(mismatches.join("; "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::TopKManifest;

    fn manifest_for(p: &MixturePreset) -> SnapshotManifest {
        SnapshotManifest {
            family_tag: <PStableL2 as SnapshotFamily>::TAG,
            distance_tag: <L2 as SnapshotDistance>::TAG,
            n: p.n,
            dim: p.dim,
            seed: p.seed,
            shards: p.shards,
            tables: MixturePreset::TABLES,
            k: MixturePreset::RNNR_HASH_LEN,
            topk: Some(TopKManifest { base: p.radius, ratio: 2.0, levels: p.levels }),
        }
    }

    #[test]
    fn matching_manifest_passes() {
        let p = MixturePreset::default();
        let m = manifest_for(&p);
        assert_eq!(p.check_manifest(&m, true), Ok(()));
        assert_eq!(p.check_manifest(&m, false), Ok(()));
    }

    #[test]
    fn each_scalar_mismatch_is_reported() {
        let p = MixturePreset::default();
        for (mutate, needle) in [
            (
                Box::new(|m: &mut SnapshotManifest| m.n += 1) as Box<dyn Fn(&mut SnapshotManifest)>,
                "n:",
            ),
            (Box::new(|m: &mut SnapshotManifest| m.dim += 1), "dim:"),
            (Box::new(|m: &mut SnapshotManifest| m.seed ^= 1), "seed:"),
            (Box::new(|m: &mut SnapshotManifest| m.shards += 1), "shards:"),
            (Box::new(|m: &mut SnapshotManifest| m.tables += 1), "tables:"),
            (Box::new(|m: &mut SnapshotManifest| m.k += 1), "hash_len:"),
            (Box::new(|m: &mut SnapshotManifest| m.family_tag = 99), "family:"),
            (Box::new(|m: &mut SnapshotManifest| m.topk = None), "top-k:"),
        ] {
            let mut m = manifest_for(&p);
            mutate(&mut m);
            let err = p.check_manifest(&m, true).expect_err("must be rejected");
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn unwanted_ladder_is_not_an_error() {
        let p = MixturePreset::default();
        let mut m = manifest_for(&p);
        m.topk = None;
        assert_eq!(p.check_manifest(&m, false), Ok(()));
        // Even a ladder with a different shape is ignored when unwanted.
        let mut m = manifest_for(&p);
        if let Some(tk) = &mut m.topk {
            tk.levels += 3;
        }
        assert_eq!(p.check_manifest(&m, false), Ok(()));
    }

    #[test]
    fn builders_share_the_preset_scalars() {
        let p = MixturePreset { dim: 8, ..MixturePreset::default() };
        assert_eq!(p.assignment().shards(), p.shards);
        assert_eq!(p.schedule().levels(), p.levels);
        assert_eq!(p.schedule().base(), p.radius);
    }
}
