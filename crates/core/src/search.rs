//! Search strategies (Algorithm 2's two arms plus the adaptive choice).

/// Which search strategy to run for a query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Algorithm 2: estimate costs per query and pick the cheaper arm.
    #[default]
    Hybrid,
    /// Always LSH-based search (the classic baseline of Figure 2).
    LshOnly,
    /// Always linear scan (the brute-force baseline of Figure 2).
    LinearOnly,
}

impl Strategy {
    /// The strategies compared in Figure 2, in the paper's legend order.
    pub const ALL: [Strategy; 3] = [Strategy::Hybrid, Strategy::LshOnly, Strategy::LinearOnly];

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Hybrid => "Hybrid",
            Strategy::LshOnly => "LSH",
            Strategy::LinearOnly => "Linear",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How the S3 distance filter (and the linear arm) evaluate distances.
///
/// The engine defaults to [`Kernel`](VerifyMode::Kernel): candidates
/// are deduplicated first and then verified as one batched
/// [`verify_many`](hlsh_vec::Distance::verify_many) call, which on
/// dense data dispatches to the chunked one-to-many kernels in
/// `hlsh_vec::kernels`. [`Scalar`](VerifyMode::Scalar) forces the
/// per-candidate `distance()` loop — the pre-kernel behaviour, kept as
/// a benchmark baseline and a cross-check in equivalence tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum VerifyMode {
    /// Batched kernel verification (default).
    #[default]
    Kernel,
    /// Per-candidate virtual `distance()` calls.
    Scalar,
}

impl VerifyMode {
    /// Display label for reports and bench output.
    pub fn label(&self) -> &'static str {
        match self {
            VerifyMode::Kernel => "kernel",
            VerifyMode::Scalar => "scalar",
        }
    }
}

impl std::fmt::Display for VerifyMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What a query actually executed after the hybrid decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecutedArm {
    /// Bucket probing + dedup + distance filter.
    Lsh,
    /// Full scan.
    Linear,
}

impl ExecutedArm {
    /// Label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ExecutedArm::Lsh => "lsh",
            ExecutedArm::Linear => "linear",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(Strategy::Hybrid.label(), "Hybrid");
        assert_eq!(Strategy::LshOnly.label(), "LSH");
        assert_eq!(Strategy::LinearOnly.label(), "Linear");
        assert_eq!(Strategy::Hybrid.to_string(), "Hybrid");
    }

    #[test]
    fn default_is_hybrid() {
        assert_eq!(Strategy::default(), Strategy::Hybrid);
    }

    #[test]
    fn executed_arm_labels() {
        assert_eq!(ExecutedArm::Lsh.label(), "lsh");
        assert_eq!(ExecutedArm::Linear.label(), "linear");
    }

    #[test]
    fn verify_mode_defaults_to_kernel() {
        assert_eq!(VerifyMode::default(), VerifyMode::Kernel);
        assert_eq!(VerifyMode::Kernel.to_string(), "kernel");
        assert_eq!(VerifyMode::Scalar.label(), "scalar");
    }
}
