//! Search strategies (Algorithm 2's two arms plus the adaptive choice).

/// Which search strategy to run for a query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Algorithm 2: estimate costs per query and pick the cheaper arm.
    #[default]
    Hybrid,
    /// Always LSH-based search (the classic baseline of Figure 2).
    LshOnly,
    /// Always linear scan (the brute-force baseline of Figure 2).
    LinearOnly,
}

impl Strategy {
    /// The strategies compared in Figure 2, in the paper's legend order.
    pub const ALL: [Strategy; 3] = [Strategy::Hybrid, Strategy::LshOnly, Strategy::LinearOnly];

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Hybrid => "Hybrid",
            Strategy::LshOnly => "LSH",
            Strategy::LinearOnly => "Linear",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What a query actually executed after the hybrid decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecutedArm {
    /// Bucket probing + dedup + distance filter.
    Lsh,
    /// Full scan.
    Linear,
}

impl ExecutedArm {
    /// Label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ExecutedArm::Lsh => "lsh",
            ExecutedArm::Linear => "linear",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(Strategy::Hybrid.label(), "Hybrid");
        assert_eq!(Strategy::LshOnly.label(), "LSH");
        assert_eq!(Strategy::LinearOnly.label(), "Linear");
        assert_eq!(Strategy::Hybrid.to_string(), "Hybrid");
    }

    #[test]
    fn default_is_hybrid() {
        assert_eq!(Strategy::default(), Strategy::Hybrid);
    }

    #[test]
    fn executed_arm_labels() {
        assert_eq!(ExecutedArm::Lsh.label(), "lsh");
        assert_eq!(ExecutedArm::Linear.label(), "linear");
    }
}
