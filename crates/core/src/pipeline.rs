//! The staged blocked build pipeline.
//!
//! Algorithm 1 as written hashes one point at a time: for each point,
//! for each table, compute `g_j(x)` and insert into a hashmap bucket.
//! That shape leaves throughput on the table — every hash is a lone
//! matrix–vector product (too few independent FMA chains to hide
//! latency) and every insert is a hashmap probe. [`BuildPipeline`]
//! restructures construction into four stages, per table:
//!
//! 1. **block-hash** — hash `block`-sized runs of points through
//!    [`GFunction::bucket_keys_block`], which on dense data pushes the
//!    whole block through one point-blocked matrix–matrix kernel
//!    ([`hlsh_vec::kernels::matmat`]);
//! 2. **key-group** — sort the `(key, id)` pairs into ascending-key
//!    runs ([`KeyRuns`]), members of each run in ascending-id
//!    (= insertion) order;
//! 3. **bulk insert** — hand each run to the store in one call
//!    ([`BucketStore::insert_run`] for the hashmap backend,
//!    [`BucketStore::from_runs`] to lay a [`FrozenStore`] CSR arena out
//!    directly with no intermediate hashmap);
//! 4. **HLL update** — sketches materialise per run (a run *is* the
//!    final bucket), register-identical to incremental per-point
//!    updates.
//!
//! Every stage is deterministic and the resulting tables are
//! byte-identical to the per-point baseline — asserted by
//! `tests/build_parity.rs` and CI's build-parity gate. Tables are
//! independent, so the index builder runs this pipeline for all `L`
//! tables through [`hlsh_vec::parallel::par_map_with`].
//!
//! [`FrozenStore`]: crate::store::FrozenStore
//! [`BucketStore::from_runs`]: crate::store::BucketStore::from_runs
//! [`BucketStore::insert_run`]: crate::store::BucketStore::insert_run

use hlsh_families::GFunction;
use hlsh_hll::HllConfig;
use hlsh_vec::{PointId, PointSet};

use crate::store::BucketStore;

/// Default number of points hashed per block. Large enough to amortise
/// the per-block projection buffer, small enough that a block of
/// `block × dim` floats stays cache-resident next to the `[k × dim]`
/// projection matrix.
pub const DEFAULT_BLOCK: usize = 256;

/// A table's `(key, id)` pairs grouped into ascending-key runs: run `j`
/// holds the members of bucket `keys[j]` in insertion (ascending-id)
/// order. This is stage 2's output and the input shape of both bulk
/// store builders.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyRuns {
    keys: Vec<u64>,
    /// `offsets[j] .. offsets[j+1]` indexes run `j`'s members in `ids`.
    offsets: Vec<usize>,
    ids: Vec<PointId>,
}

impl KeyRuns {
    /// Groups per-point keys (index = point id) into runs: sorts the
    /// `(key, id)` pairs by key — ids stay ascending within each run
    /// because the sort key breaks ties by id — then splits on key
    /// boundaries.
    pub fn group(keys_by_id: Vec<u64>) -> Self {
        Self::group_mapped(keys_by_id, None)
    }

    /// Like [`group`](Self::group) but run members are the *mapped* ids
    /// `id_map[i]` instead of the row indexes `i` — the sharded build's
    /// hook: a shard hashes its local rows but stores the points'
    /// **global** ids, so bucket members, collision counts and sketch
    /// element hashes all stay byte-identical to the unsharded index.
    /// `id_map` must be ascending (shard owner lists are), which keeps
    /// each run's members in ascending order.
    ///
    /// # Panics
    /// Panics if a mapping is supplied with `id_map.len() !=
    /// keys_by_id.len()`.
    pub fn group_mapped(keys_by_id: Vec<u64>, id_map: Option<&[PointId]>) -> Self {
        if let Some(map) = id_map {
            assert_eq!(map.len(), keys_by_id.len(), "id map length mismatch");
        }
        let mut pairs: Vec<(u64, PointId)> = keys_by_id
            .into_iter()
            .enumerate()
            .map(|(i, key)| (key, id_map.map_or(i as PointId, |m| m[i])))
            .collect();
        pairs.sort_unstable();
        let mut keys = Vec::new();
        let mut offsets = vec![0usize];
        let mut ids = Vec::with_capacity(pairs.len());
        for (key, id) in pairs {
            if keys.last() != Some(&key) {
                if !ids.is_empty() {
                    offsets.push(ids.len());
                }
                keys.push(key);
            }
            ids.push(id);
        }
        if !ids.is_empty() {
            offsets.push(ids.len());
        }
        Self { keys, offsets, ids }
    }

    /// Number of runs (= non-empty buckets).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether there are no runs.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Total members across all runs.
    pub fn total_members(&self) -> usize {
        self.ids.len()
    }

    /// Iterates `(key, members)` in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[PointId])> + '_ {
        self.keys
            .iter()
            .enumerate()
            .map(|(j, &key)| (key, &self.ids[self.offsets[j]..self.offsets[j + 1]]))
    }
}

/// Stages 1–4 of the blocked build, configured by block size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BuildPipeline {
    block: usize,
}

impl Default for BuildPipeline {
    fn default() -> Self {
        Self { block: DEFAULT_BLOCK }
    }
}

impl BuildPipeline {
    /// Pipeline with the default block size ([`DEFAULT_BLOCK`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pipeline with an explicit block size.
    ///
    /// # Panics
    /// Panics if `block == 0`.
    pub fn with_block(block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        Self { block }
    }

    /// Points hashed per kernel call.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Stage 1: hashes every point of `data` through `g`, block at a
    /// time. `keys[id] = g(point_id)`, bit-identical to a per-point
    /// `bucket_key` loop.
    pub fn hash_points<G, S>(&self, g: &G, data: &S) -> Vec<u64>
    where
        S: PointSet + ?Sized,
        G: GFunction<S::Point>,
    {
        let n = data.len();
        let mut keys = vec![0u64; n];
        let mut start = 0;
        while start < n {
            let end = (start + self.block).min(n);
            g.bucket_keys_block(data, start, &mut keys[start..end]);
            start = end;
        }
        keys
    }

    /// Stages 1–4 for one table: block-hash, key-group, and bulk-build
    /// the store. Byte-identical to per-point `insert` calls for ids
    /// `0 .. data.len()` in order (plus a freeze, for the frozen
    /// backend).
    pub fn build_store<G, S, B>(
        &self,
        g: &G,
        data: &S,
        config: HllConfig,
        lazy_threshold: usize,
    ) -> B
    where
        S: PointSet + ?Sized,
        G: GFunction<S::Point>,
        B: BucketStore,
    {
        self.build_store_mapped(g, data, None, config, lazy_threshold)
    }

    /// [`build_store`](Self::build_store) with an id mapping: row `i`
    /// of `data` is inserted under id `id_map[i]` (see
    /// [`KeyRuns::group_mapped`]).
    pub fn build_store_mapped<G, S, B>(
        &self,
        g: &G,
        data: &S,
        id_map: Option<&[PointId]>,
        config: HllConfig,
        lazy_threshold: usize,
    ) -> B
    where
        S: PointSet + ?Sized,
        G: GFunction<S::Point>,
        B: BucketStore,
    {
        let runs = KeyRuns::group_mapped(self.hash_points(g, data), id_map);
        B::from_runs(&runs, config, lazy_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{FrozenStore, MapStore};
    use hlsh_families::sampling::rng_stream;
    use hlsh_families::{LshFamily, PStableL2};
    use hlsh_vec::DenseDataset;

    #[test]
    fn group_builds_sorted_runs_with_ascending_members() {
        let keys = vec![7u64, 3, 7, 3, 3, 9, 7];
        let runs = KeyRuns::group(keys);
        assert_eq!(runs.len(), 3);
        assert_eq!(runs.total_members(), 7);
        let collected: Vec<(u64, Vec<PointId>)> =
            runs.iter().map(|(k, ids)| (k, ids.to_vec())).collect();
        assert_eq!(
            collected,
            vec![(3, vec![1, 3, 4]), (7, vec![0, 2, 6]), (9, vec![5])],
            "ascending keys, ascending ids per run"
        );
    }

    #[test]
    fn group_of_nothing_is_empty() {
        let runs = KeyRuns::group(Vec::new());
        assert!(runs.is_empty());
        assert_eq!(runs.iter().count(), 0);
    }

    #[test]
    fn blocked_store_matches_per_point_store() {
        let dim = 24;
        let data = DenseDataset::from_rows(
            dim,
            (0..300).map(|i| {
                (0..dim).map(|j| ((i * dim + j) as f32 * 0.37).sin() * 2.0).collect::<Vec<_>>()
            }),
        );
        let g = PStableL2::new(dim, 1.2).sample(6, &mut rng_stream(17, 0));
        let config = HllConfig::new(7, 3);
        let lazy = 8;

        let mut per_point = MapStore::new();
        for id in 0..data.len() {
            per_point.insert(
                hlsh_families::GFunction::bucket_key(&g, hlsh_vec::PointSet::point(&data, id)),
                id as PointId,
                config,
                lazy,
            );
        }

        // Block sizes below, straddling and above n all agree.
        for block in [1usize, 7, 256, 1024] {
            let pipeline = BuildPipeline::with_block(block);
            let blocked: MapStore = pipeline.build_store(&g, &data, config, lazy);
            assert_eq!(per_point.clone().freeze(), blocked.freeze(), "map path, block={block}");
            let frozen_direct: FrozenStore = pipeline.build_store(&g, &data, config, lazy);
            assert_eq!(per_point.clone().freeze(), frozen_direct, "frozen path, block={block}");
        }
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_rejected() {
        let _ = BuildPipeline::with_block(0);
    }
}
