//! k-diverse near-neighbor reporting on top of rNNR.
//!
//! The paper's introduction motivates rNNR as the building block of
//! *k-diverse near neighbor search* (Abbar, Amer-Yahia, Indyk,
//! Mahabadi, WWW'13): report `k` points within radius `r` of the query
//! that are maximally spread out — e.g. diverse related articles. The
//! standard reduction is exactly what this module implements: answer
//! the rNNR query (hybrid-accelerated), then run the greedy max-min
//! (Gonzalez) selection over the reported set, which gives a
//! 2-approximation to the optimal diversity.

use hlsh_families::LshFamily;
use hlsh_vec::{Distance, PointId, PointSet};

use crate::index::HybridLshIndex;
use crate::report::QueryReport;

/// Result of a k-diverse query.
#[derive(Clone, Debug)]
pub struct DiverseOutput {
    /// The selected ids, in greedy selection order (first = closest to
    /// the query, each next = farthest from the already-selected set).
    pub ids: Vec<PointId>,
    /// The achieved diversity: the minimum pairwise distance among the
    /// selected points (`f64::INFINITY` for fewer than 2 points).
    pub min_pairwise_distance: f64,
    /// Size of the underlying rNNR answer the selection drew from.
    pub candidates: usize,
    /// Instrumentation of the underlying rNNR query.
    pub report: QueryReport,
}

impl<S, F, D, B> HybridLshIndex<S, F, D, B>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
    B: crate::store::BucketStore,
{
    /// Reports up to `k` points within distance `r` of `q`, selected
    /// for maximal spread by the greedy max-min heuristic
    /// (2-approximation of the optimal minimum pairwise distance).
    ///
    /// Runs one hybrid rNNR query and then `O(k·|answer|)` distance
    /// evaluations.
    pub fn query_diverse(&self, q: &S::Point, r: f64, k: usize) -> DiverseOutput {
        let out = self.query(q, r);
        let candidates = out.ids.len();
        if k == 0 || out.ids.is_empty() {
            return DiverseOutput {
                ids: Vec::new(),
                min_pairwise_distance: f64::INFINITY,
                candidates,
                report: out.report,
            };
        }

        // Seed with the point closest to the query (the most relevant
        // representative).
        let seed_pos = (0..out.ids.len())
            .min_by(|&a, &b| {
                let da = self.distance().distance(self.data().point(out.ids[a] as usize), q);
                let db = self.distance().distance(self.data().point(out.ids[b] as usize), q);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty answer");

        let mut selected = Vec::with_capacity(k.min(out.ids.len()));
        selected.push(out.ids[seed_pos]);
        // dist_to_selected[i] = min distance from candidate i to the
        // selected set; updated incrementally (classic Gonzalez).
        let mut dist_to_selected: Vec<f64> = out
            .ids
            .iter()
            .map(|&id| {
                self.distance().distance(
                    self.data().point(id as usize),
                    self.data().point(out.ids[seed_pos] as usize),
                )
            })
            .collect();

        let mut min_pairwise = f64::INFINITY;
        while selected.len() < k.min(out.ids.len()) {
            // Farthest-from-selected candidate.
            let (best_pos, &best_dist) = dist_to_selected
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
                .expect("non-empty");
            if best_dist <= 0.0 {
                // Only exact duplicates of selected points remain.
                break;
            }
            min_pairwise = min_pairwise.min(best_dist);
            let chosen = out.ids[best_pos];
            selected.push(chosen);
            for (i, &id) in out.ids.iter().enumerate() {
                let d = self
                    .distance()
                    .distance(self.data().point(id as usize), self.data().point(chosen as usize));
                if d < dist_to_selected[i] {
                    dist_to_selected[i] = d;
                }
            }
        }

        DiverseOutput {
            ids: selected,
            min_pairwise_distance: min_pairwise,
            candidates,
            report: out.report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use crate::cost::CostModel;
    use hlsh_families::PStableL2;
    use hlsh_vec::{DenseDataset, L2};

    /// Three tight blobs within the radius: the 3-diverse answer should
    /// pick one point per blob.
    fn blob_index() -> HybridLshIndex<DenseDataset, PStableL2, L2> {
        let mut data = DenseDataset::new(2);
        for (cx, cy) in [(0.0f32, 0.0), (5.0, 0.0), (0.0, 5.0)] {
            for i in 0..20 {
                data.push(&[cx + (i as f32) * 0.01, cy]);
            }
        }
        IndexBuilder::new(PStableL2::new(2, 2.0), L2)
            .tables(8)
            .hash_len(2)
            .seed(1)
            .cost_model(CostModel::from_ratio(1.0))
            .build(data)
    }

    #[test]
    fn selects_one_point_per_blob() {
        let index = blob_index();
        let out = index.query_diverse(&[1.0f32, 1.0], 10.0, 3);
        assert_eq!(out.ids.len(), 3);
        assert_eq!(out.candidates, 60);
        // One id per blob: ids 0..20, 20..40, 40..60.
        let blobs: std::collections::HashSet<u32> = out.ids.iter().map(|&id| id / 20).collect();
        assert_eq!(blobs.len(), 3, "ids {:?}", out.ids);
        assert!(out.min_pairwise_distance > 4.0);
    }

    #[test]
    fn k_larger_than_answer_returns_everything_distinct() {
        let index = blob_index();
        // Radius that covers only blob 0.
        let out = index.query_diverse(&[0.1f32, 0.0], 1.0, 100);
        assert!(out.ids.len() <= 20);
        assert!(!out.ids.is_empty());
        // All selected ids are unique.
        let set: std::collections::HashSet<u32> = out.ids.iter().copied().collect();
        assert_eq!(set.len(), out.ids.len());
    }

    #[test]
    fn k_zero_and_empty_answers() {
        let index = blob_index();
        let empty = index.query_diverse(&[100.0f32, 100.0], 0.5, 3);
        assert!(empty.ids.is_empty());
        assert_eq!(empty.candidates, 0);
        let k0 = index.query_diverse(&[0.0f32, 0.0], 1.0, 0);
        assert!(k0.ids.is_empty());
        assert!(k0.candidates > 0);
    }

    #[test]
    fn first_selected_is_nearest_neighbor() {
        let index = blob_index();
        let q = [5.05f32, 0.0];
        let out = index.query_diverse(&q, 10.0, 2);
        // Nearest point to (5.05, 0) lives in blob 1 (ids 20..40).
        assert!((20..40).contains(&out.ids[0]), "first id {}", out.ids[0]);
    }

    #[test]
    fn diversity_monotone_in_k() {
        // The greedy max-min radius can only shrink as k grows.
        let index = blob_index();
        let q = [1.0f32, 1.0];
        let d2 = index.query_diverse(&q, 10.0, 2).min_pairwise_distance;
        let d5 = index.query_diverse(&q, 10.0, 5).min_pairwise_distance;
        assert!(d5 <= d2 + 1e-9);
    }
}
