//! The computational cost model of §3.1 and its calibration.
//!
//! ```text
//! LSHCost    = α·#collisions + β·candSize      (Eq. 1)
//! LinearCost = β·n                             (Eq. 2)
//! ```
//!
//! `α` is the average cost of removing one duplicate (one hash-set
//! insert while merging the `L` buckets), `β` the cost of one distance
//! computation. Only the ratio `β/α` matters for the Algorithm 2
//! decision; the paper calibrates it per data set on "a random set of
//! 100 queries and 10,000 data points" and reports 10, 10, 6 and 1 for
//! Webspam, CoverType, Corel and MNIST. [`CostModel::calibrate`]
//! reproduces that procedure by timing both primitive operations.
//!
//! # Refinement over the paper's single β
//!
//! Measured arm costs show the paper's single `β` conflates two
//! different distance costs: the linear arm scans rows *sequentially*
//! (hardware-prefetch friendly) while the LSH arm evaluates its
//! deduplicated candidates in *random order* (cache-hostile); on a
//! 254-dimensional data set we measured ≈200 ns vs ≈290 ns per
//! distance. Using one β mispredicts hard-query decisions by ~15%, so
//! this model carries both: `β_scan` prices Eq. 2 and `β_cand` prices
//! the candidate term of Eq. 1. [`CostModel::from_ratio`] collapses
//! them (`β_scan = β_cand`), which reproduces the paper's original
//! model exactly — the `ablate_ratio` bench compares both.

use std::time::Instant;

use hlsh_vec::{Distance, PointSet};

use crate::hasher::FxHashSet;

/// The calibrated `(α, β_scan, β_cand)` triple.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    alpha: f64,
    beta_scan: f64,
    beta_cand: f64,
}

impl CostModel {
    /// Builds a single-β model from explicit `α` and `β` (arbitrary
    /// but equal units, e.g. nanoseconds) — the paper's original form.
    ///
    /// # Panics
    /// Panics unless both are positive and finite.
    pub fn new(alpha: f64, beta: f64) -> Self {
        Self::new_split(alpha, beta, beta)
    }

    /// Builds the refined model with distinct sequential-scan and
    /// random-access distance costs.
    ///
    /// # Panics
    /// Panics unless all three are positive and finite.
    pub fn new_split(alpha: f64, beta_scan: f64, beta_cand: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive, got {alpha}");
        assert!(
            beta_scan.is_finite() && beta_scan > 0.0,
            "beta_scan must be positive, got {beta_scan}"
        );
        assert!(
            beta_cand.is_finite() && beta_cand > 0.0,
            "beta_cand must be positive, got {beta_cand}"
        );
        Self { alpha, beta_scan, beta_cand }
    }

    /// Builds a model from the `β/α` ratio (the paper's presentation:
    /// `α = 1`, `β = ratio`, single β).
    pub fn from_ratio(beta_over_alpha: f64) -> Self {
        Self::new(1.0, beta_over_alpha)
    }

    /// Duplicate-removal unit cost `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Sequential-scan distance cost `β_scan` (prices Eq. 2).
    pub fn beta(&self) -> f64 {
        self.beta_scan
    }

    /// Random-access distance cost `β_cand` (prices the candidate term
    /// of Eq. 1; equals [`beta`](Self::beta) for single-β models).
    pub fn beta_cand(&self) -> f64 {
        self.beta_cand
    }

    /// The paper-facing ratio `β_scan/α`.
    pub fn ratio(&self) -> f64 {
        self.beta_scan / self.alpha
    }

    /// `LSHCost = α·#collisions + β_cand·candSize` (Eq. 1).
    pub fn lsh_cost(&self, collisions: usize, cand_size: f64) -> f64 {
        self.alpha * collisions as f64 + self.beta_cand * cand_size
    }

    /// `LinearCost = β_scan·n` (Eq. 2).
    pub fn linear_cost(&self, n: usize) -> f64 {
        self.beta_scan * n as f64
    }

    /// Algorithm 2 line 4: LSH-based search iff
    /// `LSHCost < LinearCost`.
    pub fn prefer_lsh(&self, collisions: usize, cand_size: f64, n: usize) -> bool {
        self.lsh_cost(collisions, cand_size) < self.linear_cost(n)
    }

    /// Calibrates `α` and `β` by timing the two primitive operations on
    /// a sample of the data, mirroring the paper's procedure (§4.2).
    ///
    /// * `β`: mean wall time of one distance evaluation during a
    ///   *sequential scan* against a fixed query point — exactly the
    ///   per-point cost that `LinearCost = β·n` (Eq. 2) charges;
    /// * `β_cand`: the same distance evaluated in random visiting
    ///   order, as the LSH arm does over its candidates;
    /// * `α`: mean wall time of one duplicate-removal step, i.e. one
    ///   insert into the hash set used by the LSH merge path.
    ///
    /// Each measurement is repeated three times after a warm-up pass
    /// and the minimum is kept, which rejects scheduler and cache-warm
    /// noise (single-shot timings were observed to swing β by ±20%).
    ///
    /// # Panics
    /// Panics if the data set has fewer than 2 points or
    /// `sample_pairs == 0`.
    pub fn calibrate<S, D>(data: &S, distance: &D, sample_pairs: usize, seed: u64) -> Self
    where
        S: PointSet,
        D: Distance<S::Point>,
    {
        let n = data.len();
        assert!(n >= 2, "need at least 2 points to calibrate");
        assert!(sample_pairs > 0, "need a positive sample size");

        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(hlsh_hll::hash::GOLDEN_GAMMA);
            hlsh_hll::hash::splitmix64(state)
        };

        // Time β: a sequential scan of `sample_pairs` points against a
        // fixed query, as the linear arm does.
        let q_idx = (next() % n as u64) as usize;
        let scan_len = sample_pairs.min(n);
        let mut beta = f64::INFINITY;
        for rep in 0..4 {
            let t0 = Instant::now();
            let mut sink = 0.0f64;
            for i in 0..scan_len {
                sink += distance.distance(data.point(i), data.point(q_idx));
            }
            std::hint::black_box(sink);
            let per_op = t0.elapsed().as_nanos() as f64 / scan_len as f64;
            if rep > 0 {
                // rep 0 is the cache warm-up.
                beta = beta.min(per_op);
            }
        }

        // Time α: hash-set inserts of point ids (the duplicate-removal
        // primitive of Step S2). The regime the decision exists for is
        // a hard query whose candidates collide in many of the L
        // tables: each distinct candidate is inserted once and then
        // repeatedly looked up in a set of roughly `sample` entries. We
        // replay exactly that — `16×` duplication over a `sample`-sized
        // id range — so α reflects hot-hit cost at a realistic set
        // size, not cold growth.
        let dup_factor = 16;
        let alpha_ops = sample_pairs * dup_factor;
        let ids: Vec<u32> = (0..alpha_ops).map(|_| (next() % sample_pairs as u64) as u32).collect();
        let mut alpha = f64::INFINITY;
        for rep in 0..4 {
            let mut set: FxHashSet<u32> = FxHashSet::default();
            let t1 = Instant::now();
            for &id in &ids {
                set.insert(id);
            }
            std::hint::black_box(set.len());
            let per_op = t1.elapsed().as_nanos() as f64 / alpha_ops as f64;
            if rep > 0 {
                alpha = alpha.min(per_op);
            }
        }

        // Time β_cand: distances evaluated in random order, as the LSH
        // arm visits its deduplicated candidates.
        let order: Vec<usize> = (0..scan_len).map(|_| (next() % n as u64) as usize).collect();
        let mut beta_cand = f64::INFINITY;
        for rep in 0..4 {
            let t2 = Instant::now();
            let mut sink = 0.0f64;
            for &i in &order {
                sink += distance.distance(data.point(i), data.point(q_idx));
            }
            std::hint::black_box(sink);
            let per_op = t2.elapsed().as_nanos() as f64 / scan_len as f64;
            if rep > 0 {
                beta_cand = beta_cand.min(per_op);
            }
        }

        // Guard against timer quantisation producing zeros; random
        // access can only be dearer than the sequential scan.
        let beta = beta.max(0.1);
        Self::new_split(alpha.max(0.1), beta, beta_cand.max(beta))
    }
}

/// The per-query cost estimate surfaced by
/// [`HybridLshIndex::explain`](crate::HybridLshIndex::explain).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostEstimate {
    /// Total collisions across the `L` probed buckets.
    pub collisions: usize,
    /// HLL-estimated distinct candidate count.
    pub cand_size_estimate: f64,
    /// `α·collisions + β·candSize`.
    pub lsh_cost: f64,
    /// `β·n`.
    pub linear_cost: f64,
}

impl CostEstimate {
    /// Whether Algorithm 2 would choose LSH-based search.
    pub fn prefers_lsh(&self) -> bool {
        self.lsh_cost < self.linear_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsh_vec::{DenseDataset, L2};

    #[test]
    fn costs_follow_equations() {
        let m = CostModel::new(2.0, 10.0);
        assert_eq!(m.lsh_cost(100, 50.0), 2.0 * 100.0 + 10.0 * 50.0);
        assert_eq!(m.linear_cost(1000), 10_000.0);
        assert_eq!(m.ratio(), 5.0);
    }

    #[test]
    fn from_ratio_sets_alpha_one() {
        let m = CostModel::from_ratio(6.0);
        assert_eq!(m.alpha(), 1.0);
        assert_eq!(m.beta(), 6.0);
    }

    #[test]
    fn decision_flips_with_collisions() {
        let m = CostModel::from_ratio(10.0);
        let n = 1_000;
        // Few collisions, small candidate set: LSH wins.
        assert!(m.prefer_lsh(50, 30.0, n));
        // Collisions alone exceed β·n: linear wins.
        assert!(!m.prefer_lsh(20_000, 900.0, n));
        // Candidate set ≈ n: linear wins even with zero dedup cost.
        assert!(!m.prefer_lsh(0, 1_000.0, n));
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_nonpositive_alpha() {
        let _ = CostModel::new(0.0, 1.0);
    }

    #[test]
    fn calibrate_produces_positive_sane_ratio() {
        let mut data = DenseDataset::new(64);
        let row: Vec<f32> = (0..64).map(|i| i as f32).collect();
        for _ in 0..1000 {
            data.push(&row);
        }
        let m = CostModel::calibrate(&data, &L2, 5_000, 42);
        assert!(m.alpha() > 0.0);
        assert!(m.beta() > 0.0);
        // A 64-dim distance costs more than a hash-set insert, but not
        // by more than a few orders of magnitude.
        assert!(m.ratio() > 0.05 && m.ratio() < 1e4, "ratio {}", m.ratio());
    }

    #[test]
    fn estimate_prefers_lsh_consistently() {
        let e = CostEstimate {
            collisions: 10,
            cand_size_estimate: 5.0,
            lsh_cost: 60.0,
            linear_cost: 100.0,
        };
        assert!(e.prefers_lsh());
        let e2 = CostEstimate { lsh_cost: 200.0, ..e };
        assert!(!e2.prefers_lsh());
    }
}
