//! The hybrid-LSH index — the primary contribution of Pham, "Hybrid LSH:
//! Faster Near Neighbors Reporting in High-dimensional Space" (EDBT'17).
//!
//! # The idea
//!
//! Classic LSH answers an `r`-near-neighbor-reporting query by probing
//! one bucket in each of `L` hash tables, deduplicating the colliding
//! points and filtering them by distance. On "hard" queries — dense
//! regions where the output is a large fraction of the data set — the
//! deduplication step alone costs more than a brute-force scan.
//!
//! The hybrid index instruments every bucket with a HyperLogLog sketch
//! at build time (Algorithm 1). A query then:
//!
//! 1. reads the `L` bucket sizes → `#collisions`,
//! 2. merges the `L` bucket sketches → estimated distinct candidate
//!    count `candSize`,
//! 3. compares `LSHCost = α·#collisions + β·candSize` (Eq. 1) against
//!    `LinearCost = β·n` (Eq. 2), and
//! 4. runs whichever strategy is cheaper (Algorithm 2).
//!
//! The estimation overhead is `O(m·L)` — independent of the data — and
//! the decision adapts per query, so sparse-region queries keep LSH's
//! sublinear behaviour while dense-region queries fall back to the scan.
//!
//! # Storage and execution
//!
//! Bucket storage is pluggable behind the [`store::BucketStore`]
//! trait: indexes build on the hashmap-backed [`MapStore`] and can be
//! [`frozen`](HybridLshIndex::freeze) into the CSR-arena
//! [`FrozenStore`] for read-mostly serving (binary-search lookups over
//! contiguous arrays, zero per-bucket allocation; `thaw` converts
//! back). Query execution lives in [`QueryEngine`], which reuses
//! per-thread scratch across queries;
//! [`query_batch`](HybridLshIndex::query_batch) shards a batch over
//! scoped threads with byte-identical results to a sequential loop.
//!
//! # Example
//!
//! ```
//! use hlsh_core::{CostModel, IndexBuilder};
//! use hlsh_families::SimHash;
//! use hlsh_vec::{Cosine, DenseDataset};
//!
//! // A toy data set on the unit circle.
//! let mut data = DenseDataset::new(2);
//! for i in 0..500 {
//!     let t = i as f32 * 0.01;
//!     data.push(&[t.cos(), t.sin()]);
//! }
//! let index = IndexBuilder::new(SimHash::new(2), Cosine)
//!     .tables(10)
//!     .hash_len(4)
//!     .seed(7)
//!     .cost_model(CostModel::from_ratio(10.0))
//!     .build(data);
//!
//! let q = [1.0f32, 0.0];
//! let out = index.query(&q, 0.01);
//! assert!(!out.ids.is_empty());
//! // Every reported point really is within the radius.
//! assert!(out.ids.iter().all(|&id| {
//!     hlsh_vec::dense::cosine_distance(index.data().row(id as usize), &q) <= 0.01
//! }));
//! ```

#![deny(missing_docs)]
// `deny`, not `forbid`: the snapshot mmap wrapper is the one module
// allowed to opt in to `unsafe` (see `snapshot::mmap`'s module docs for
// the confined obligations). Everything else stays unsafe-free.
#![deny(unsafe_code)]

pub mod bucket;
pub mod builder;
pub mod cost;
pub mod diverse;
pub mod engine;
pub mod hasher;
pub mod index;
pub mod pipeline;
pub mod presets;
pub mod recall;
pub mod report;
pub mod schedule;
pub mod search;
pub mod segmented;
pub mod sharded;
pub mod snapshot;
pub mod store;
pub mod table;
pub mod topk;

pub use bucket::BucketRef;
pub use builder::{BuildMode, IndexBuilder};
pub use cost::{CostEstimate, CostModel};
pub use diverse::DiverseOutput;
pub use engine::{QueryDistOutput, QueryEngine};
pub use index::{HybridLshIndex, IndexStats};
pub use pipeline::{BuildPipeline, KeyRuns};
pub use presets::MixturePreset;
pub use recall::{evaluate_recall, RecallReport};
pub use report::{QueryOutput, QueryReport};
pub use schedule::RadiusSchedule;
pub use search::{Strategy, VerifyMode};
pub use segmented::{
    MutationError, SegmentedIndex, SegmentedQueryEngine, SegmentedTopKEngine, SegmentedTopKIndex,
};
pub use sharded::{
    ShardAssignment, ShardSummary, ShardedIndex, ShardedQueryEngine, ShardedTopKEngine,
    ShardedTopKIndex,
};
pub use snapshot::{
    load_snapshot, read_layout, read_manifest, save_snapshot, LoadMode, LoadPlan, LoadedSnapshot,
    SnapshotError, SnapshotLayout, SnapshotManifest, StorageProfile,
};
pub use store::{BucketStore, FrozenStore, MapStore};
pub use topk::{BoundedHeap, Neighbor, TopKEngine, TopKIndex, TopKOutput, TopKReport};
