//! Exact (brute force) ground truth, multi-threaded over queries.
//!
//! The paper's accuracy metrics (output size in Figure 3, recall in
//! §4.2, the candSize error in Table 1) all need the exact answer set.
//! Queries are embarrassingly parallel, so the scan shards over
//! `std::thread` scoped threads.

use hlsh_vec::{Distance, PointId, PointSet};

/// Computes, for every query, the ids of all data points within
/// distance `r` (the exact rNNR answer).
///
/// Results are in query order; each id list is in ascending id order.
pub fn ground_truth<S, Q, D>(data: &S, queries: &Q, distance: &D, r: f64) -> Vec<Vec<PointId>>
where
    S: PointSet + Sync,
    Q: PointSet<Point = S::Point> + Sync,
    D: Distance<S::Point> + Sync,
{
    let nq = queries.len();
    let mut results: Vec<Vec<PointId>> = vec![Vec::new(); nq];
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(nq.max(1));
    if threads <= 1 || nq <= 1 {
        for (qi, out) in results.iter_mut().enumerate() {
            *out = scan(data, queries.point(qi), distance, r);
        }
        return results;
    }
    let chunk = nq.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, slot) in results.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (off, out) in slot.iter_mut().enumerate() {
                    let qi = ci * chunk + off;
                    *out = scan(data, queries.point(qi), distance, r);
                }
            });
        }
    });
    results
}

fn scan<S, D>(data: &S, q: &S::Point, distance: &D, r: f64) -> Vec<PointId>
where
    S: PointSet,
    D: Distance<S::Point>,
{
    // Goes through the metric's scan_within hook, so dense ground truth
    // gets the chunked full-scan kernels (identical predicate to a
    // per-point distance() loop).
    let mut out = Vec::new();
    distance.scan_within(data, q, r, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsh_vec::{DenseDataset, L2};

    fn line_data(n: usize) -> DenseDataset {
        DenseDataset::from_rows(1, (0..n).map(|i| [i as f32]))
    }

    #[test]
    fn exact_answers_on_a_line() {
        let data = line_data(100);
        let queries = DenseDataset::from_rows(1, [[10.0f32], [50.0], [99.0]]);
        let gt = ground_truth(&data, &queries, &L2, 2.0);
        assert_eq!(gt[0], vec![8, 9, 10, 11, 12]);
        assert_eq!(gt[1], vec![48, 49, 50, 51, 52]);
        assert_eq!(gt[2], vec![97, 98, 99]);
    }

    #[test]
    fn zero_radius_finds_exact_duplicates() {
        let data = line_data(10);
        let queries = DenseDataset::from_rows(1, [[3.0f32]]);
        let gt = ground_truth(&data, &queries, &L2, 0.0);
        assert_eq!(gt[0], vec![3]);
    }

    #[test]
    fn empty_query_set() {
        let data = line_data(10);
        let queries = DenseDataset::new(1);
        let gt = ground_truth(&data, &queries, &L2, 1.0);
        assert!(gt.is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let data = line_data(512);
        let queries = DenseDataset::from_rows(1, (0..64).map(|i| [(i * 8) as f32]));
        let par = ground_truth(&data, &queries, &L2, 3.5);
        for (qi, ids) in par.iter().enumerate() {
            let q = queries.row(qi);
            let seq: Vec<u32> = (0..data.len() as u32)
                .filter(|&id| (data.row(id as usize)[0] - q[0]).abs() <= 3.5)
                .collect();
            assert_eq!(ids, &seq, "query {qi}");
        }
    }
}
