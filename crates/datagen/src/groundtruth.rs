//! Exact (brute force) ground truth, multi-threaded over queries.
//!
//! The paper's accuracy metrics (output size in Figure 3, recall in
//! §4.2, the candSize error in Table 1) all need the exact answer set.
//! Queries are embarrassingly parallel, so the scans shard over
//! scoped threads via [`hlsh_vec::parallel::par_map_with`].

use hlsh_vec::{Distance, PointId, PointSet};

/// Computes, for every query, the ids of all data points within
/// distance `r` (the exact rNNR answer).
///
/// Results are in query order; each id list is in ascending id order.
pub fn ground_truth<S, Q, D>(data: &S, queries: &Q, distance: &D, r: f64) -> Vec<Vec<PointId>>
where
    S: PointSet + Sync,
    Q: PointSet<Point = S::Point> + Sync,
    D: Distance<S::Point> + Sync,
{
    hlsh_vec::parallel::par_map_with(
        queries.len(),
        None,
        || (),
        |_, qi| scan(data, queries.point(qi), distance, r),
    )
}

/// Computes, for every query, the exact `min(k, n)` nearest neighbors
/// as `(id, distance)` pairs, ascending by `(distance, id)` — distance
/// ties always break toward the smaller id, so the truth is a total
/// order and stable across thread counts.
///
/// Per query the scan avoids computing most exact distances: the k-th
/// smallest distance within a fixed prefix of the data is an upper
/// bound on the true k-th-neighbor distance, so one
/// [`scan_within`](Distance::scan_within) pass at that bound (the
/// chunked full-scan kernel with early-exit on dense data) yields a
/// candidate superset that is then ranked exactly.
pub fn ground_truth_topk<S, Q, D>(
    data: &S,
    queries: &Q,
    distance: &D,
    k: usize,
) -> Vec<Vec<(PointId, f64)>>
where
    S: PointSet + Sync,
    Q: PointSet<Point = S::Point> + Sync,
    D: Distance<S::Point> + Sync,
{
    hlsh_vec::parallel::par_map_with(
        queries.len(),
        None,
        || (),
        |_, qi| scan_topk(data, queries.point(qi), distance, k),
    )
}

fn scan<S, D>(data: &S, q: &S::Point, distance: &D, r: f64) -> Vec<PointId>
where
    S: PointSet,
    D: Distance<S::Point>,
{
    // Goes through the metric's scan_within hook, so dense ground truth
    // gets the chunked full-scan kernels (identical predicate to a
    // per-point distance() loop).
    let mut out = Vec::new();
    distance.scan_within(data, q, r, &mut out);
    out
}

/// Exact top-k for one query; see [`ground_truth_topk`].
fn scan_topk<S, D>(data: &S, q: &S::Point, distance: &D, k: usize) -> Vec<(PointId, f64)>
where
    S: PointSet,
    D: Distance<S::Point>,
{
    let n = data.len();
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    let by_dist_then_id =
        |a: &(PointId, f64), b: &(PointId, f64)| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0));

    // Distances over a prefix sample: its k-th smallest bounds the true
    // k-th-neighbor distance from above.
    let sample = n.min(k.max(256));
    let mut cand: Vec<(PointId, f64)> =
        (0..sample).map(|id| (id as PointId, distance.distance(data.point(id), q))).collect();
    if sample < n {
        let (_, kth, _) = cand.select_nth_unstable_by(k - 1, by_dist_then_id);
        let bound = kth.1;
        // Everything within the bound is a superset of the true top-k
        // (radius predicate is `<=`, so boundary ties are kept).
        let mut ids = Vec::new();
        distance.scan_within(data, q, bound, &mut ids);
        cand =
            ids.into_iter().map(|id| (id, distance.distance(data.point(id as usize), q))).collect();
        debug_assert!(cand.len() >= k, "radius bound must keep at least k candidates");
    }
    if cand.len() > k {
        cand.select_nth_unstable_by(k - 1, by_dist_then_id);
        cand.truncate(k);
    }
    cand.sort_unstable_by(by_dist_then_id);
    cand
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsh_vec::{DenseDataset, L2};

    fn line_data(n: usize) -> DenseDataset {
        DenseDataset::from_rows(1, (0..n).map(|i| [i as f32]))
    }

    #[test]
    fn exact_answers_on_a_line() {
        let data = line_data(100);
        let queries = DenseDataset::from_rows(1, [[10.0f32], [50.0], [99.0]]);
        let gt = ground_truth(&data, &queries, &L2, 2.0);
        assert_eq!(gt[0], vec![8, 9, 10, 11, 12]);
        assert_eq!(gt[1], vec![48, 49, 50, 51, 52]);
        assert_eq!(gt[2], vec![97, 98, 99]);
    }

    #[test]
    fn zero_radius_finds_exact_duplicates() {
        let data = line_data(10);
        let queries = DenseDataset::from_rows(1, [[3.0f32]]);
        let gt = ground_truth(&data, &queries, &L2, 0.0);
        assert_eq!(gt[0], vec![3]);
    }

    #[test]
    fn empty_query_set() {
        let data = line_data(10);
        let queries = DenseDataset::new(1);
        let gt = ground_truth(&data, &queries, &L2, 1.0);
        assert!(gt.is_empty());
    }

    #[test]
    fn topk_on_a_line_breaks_ties_by_ascending_id() {
        let data = line_data(100);
        let queries = DenseDataset::from_rows(1, [[10.0f32], [0.0]]);
        let gt = ground_truth_topk(&data, &queries, &L2, 5);
        // Distances 0,1,1,2,2 → ids 10, then 9 before 11, then 8 before 12.
        let ids: Vec<u32> = gt[0].iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![10, 9, 11, 8, 12]);
        assert_eq!(gt[0][0].1, 0.0);
        assert_eq!(gt[0][1].1, 1.0);
        // Boundary query: nothing below 0.
        let ids: Vec<u32> = gt[1].iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn topk_equals_full_sort_reference() {
        // 600 points forces the prefix-bound + scan_within path
        // (sample = 256 < n); compare against the naive full sort.
        let data = line_data(600);
        let queries = DenseDataset::from_rows(1, [[300.5f32], [599.0], [0.25]]);
        let k = 17;
        let gt = ground_truth_topk(&data, &queries, &L2, k);
        for (qi, found) in gt.iter().enumerate() {
            let q = queries.row(qi);
            let mut all: Vec<(u32, f64)> =
                (0..data.len()).map(|i| (i as u32, L2.distance(data.row(i), q))).collect();
            all.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            all.truncate(k);
            assert_eq!(found, &all, "query {qi}");
        }
    }

    #[test]
    fn topk_k_of_zero_and_k_beyond_n() {
        let data = line_data(8);
        let queries = DenseDataset::from_rows(1, [[4.0f32]]);
        assert!(ground_truth_topk(&data, &queries, &L2, 0)[0].is_empty());
        let all = &ground_truth_topk(&data, &queries, &L2, 100)[0];
        assert_eq!(all.len(), 8);
        assert!(all
            .windows(2)
            .all(|w| { w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0) }));
    }

    #[test]
    fn parallel_matches_sequential() {
        let data = line_data(512);
        let queries = DenseDataset::from_rows(1, (0..64).map(|i| [(i * 8) as f32]));
        let par = ground_truth(&data, &queries, &L2, 3.5);
        for (qi, ids) in par.iter().enumerate() {
            let q = queries.row(qi);
            let seq: Vec<u32> = (0..data.len() as u32)
                .filter(|&id| (data.row(id as usize)[0] - q[0]).abs() <= 3.5)
                .collect();
            assert_eq!(ids, &seq, "query {qi}");
        }
    }
}
