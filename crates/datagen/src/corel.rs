//! Corel-Images analog: n = 68,040, d = 32, L2 metric.
//!
//! The original data set is colour histograms — non-negative, bounded,
//! naturally clustered by image theme. Figure 2d sweeps L2 radii
//! 0.35–0.60, where LSH beats the scan at the small end and degrades at
//! the large end. We reproduce that regime with a few dozen clusters of
//! *varied* isotropic spread: with per-coordinate sigma `s`, two
//! intra-cluster points sit at expected L2 distance `s·√(2d) = 8s`, so
//! sigmas in 0.03–0.09 put intra-cluster distances right across the
//! 0.24–0.72 band and make the radius sweep cross from "tiny outputs"
//! to "whole clusters".

use hlsh_families::sampling::rng_stream;
use hlsh_vec::DenseDataset;
use rand::Rng;

use crate::mixture::{uniform_center, ClusterSpec, MixtureBuilder, PostProcess};

/// Dimensionality of the Corel analog.
pub const DIM: usize = 32;

/// Generates the Corel analog with `n` points.
///
/// Cluster profile: 40 components, moderately skewed sizes (weight
/// `∝ 1/(1+i/4)`), sigmas cycling through 0.03–0.09, centers uniform in
/// `[0.1, 0.9]^32`, coordinates clamped non-negative like histogram
/// mass.
pub fn corel_like(n: usize, seed: u64) -> DenseDataset {
    let mut rng = rng_stream(seed, 0x434F_5245);
    let mut builder = MixtureBuilder::new(DIM).post_process(PostProcess::ClampNonNegative);
    let clusters = 40;
    let mut theme_weight_total = 0.0;
    for i in 0..clusters {
        let center = uniform_center(&mut rng, DIM, 0.1, 0.9);
        // Sigma varies per cluster → diverse local density (the paper's
        // central premise).
        let sigma = 0.03 + 0.06 * (i as f64 / (clusters - 1) as f64);
        let weight = 1.0 / (1.0 + i as f64 / 4.0);
        theme_weight_total += weight;
        builder = builder.cluster(ClusterSpec { weight, center, sigma });
    }
    // Near-duplicate theme (~35% of the data): colour histograms of
    // near-identical images (bursts, crops of one scene). Intra-pair L2
    // distance ≈ 0.020·√64 ≈ 0.16, so under w = 2r its per-table
    // retention rises across the 0.35–0.60 sweep and crosses the
    // hybrid decision boundary near the top — the paper's Figure 2d
    // convergence of LSH onto linear search.
    let dup_center = uniform_center(&mut rng, DIM, 0.2, 0.8);
    builder = builder.cluster(ClusterSpec {
        // 35% of total: the 40 themes + background hold the rest.
        weight: theme_weight_total * 0.60,
        center: dup_center,
        sigma: 0.020,
    });
    // A thin uniform background so some queries see almost nothing.
    let background_center = vec![0.5f32; DIM];
    builder = builder.cluster(ClusterSpec {
        weight: 0.05 * clusters as f64,
        center: background_center,
        sigma: 0.35,
    });
    let _ = rng.gen::<u64>();
    builder.sample(n, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsh_vec::dense::l2;

    #[test]
    fn shape_and_determinism() {
        let a = corel_like(500, 7);
        let b = corel_like(500, 7);
        assert_eq!(a.len(), 500);
        assert_eq!(a.dim(), DIM);
        assert_eq!(a, b);
        assert_ne!(a, corel_like(500, 8));
    }

    #[test]
    fn values_are_nonnegative() {
        let d = corel_like(300, 1);
        assert!(d.as_flat().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn paper_radius_band_is_meaningful() {
        // At r = 0.6 a query drawn from the data should have *some*
        // neighbors (its own cluster), but far fewer than n.
        let d = corel_like(3_000, 2);
        let q = d.row(0).to_vec();
        let within: usize = d.rows().filter(|row| l2(row, &q) <= 0.6).count();
        assert!(within >= 1, "query lost its own cluster");
        assert!(within < d.len() / 2, "radius 0.6 captures too much: {within}");
    }

    #[test]
    fn density_is_diverse() {
        // Count 0.45-neighbors for a sample of points: the spread
        // between sparse and dense regions should be wide.
        let d = corel_like(2_000, 3);
        let counts: Vec<usize> = (0..40)
            .map(|i| {
                let q = d.row(i * 37).to_vec();
                d.rows().filter(|row| l2(row, &q) <= 0.45).count()
            })
            .collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max >= 4 * (min + 1), "density not diverse: min {min} max {max}");
    }
}
