//! MNIST analog: n = 60,000, d = 780, Hamming metric on 64-bit SimHash
//! fingerprints.
//!
//! The paper compresses each MNIST image to a 64-bit SimHash
//! fingerprint and searches in Hamming space with bit sampling, radii
//! 12–17 (of 64). A fingerprint bit disagrees between two images with
//! probability `θ/π` (θ = angle between them), so expected fingerprint
//! distance is `64·θ/π`; the radius band 12–17 therefore corresponds to
//! image angles of 34°–48°. The generator produces 10 digit-style
//! clusters whose intra-cluster angles land in exactly that band (and
//! inter-cluster angles well above it).

use hlsh_families::sampling::rng_stream;
use hlsh_families::simhash_fingerprints;
use hlsh_vec::{BinaryDataset, DenseDataset};
use rand::Rng;

use crate::mixture::{ClusterSpec, MixtureBuilder, PostProcess};

/// Raw dimensionality of the MNIST analog (28×28 padded, as in the
/// libsvm distribution).
pub const DIM: usize = 780;

/// Fingerprint width used by the paper.
pub const FINGERPRINT_BITS: usize = 64;

/// Generates the raw (dense) MNIST analog with `n` points in
/// `[0,1]^780`: 10 sparse stroke-pattern clusters.
pub fn mnist_like_raw(n: usize, seed: u64) -> DenseDataset {
    let mut rng = rng_stream(seed, 0x4D4E_4953);
    let mut builder = MixtureBuilder::new(DIM).post_process(PostProcess::ClampUnit);
    for digit in 0..10 {
        // Digit prototype: ~20% of pixels active with intensity 0.5–1.
        let center: Vec<f32> = (0..DIM)
            .map(|_| if rng.gen::<f64>() < 0.20 { 0.5 + 0.5 * rng.gen::<f32>() } else { 0.0 })
            .collect();
        // Writing-style spread; varies per digit for density diversity.
        let sigma = 0.16 + 0.02 * (digit % 5) as f64;
        builder = builder.cluster(ClusterSpec { weight: 1.0, center, sigma });
    }
    builder.sample(n, seed).0
}

/// Generates the fingerprinted MNIST analog: raw images compressed to
/// 64-bit SimHash fingerprints, ready for Hamming search (the exact
/// pipeline of §4).
pub fn mnist_like(n: usize, seed: u64) -> BinaryDataset {
    let raw = mnist_like_raw(n, seed);
    simhash_fingerprints(&raw, FINGERPRINT_BITS, seed ^ 0x5350)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsh_vec::binary::hamming_words;

    #[test]
    fn shape_and_determinism() {
        let a = mnist_like(300, 6);
        assert_eq!(a.len(), 300);
        assert_eq!(a.bits(), 64);
        assert_eq!(a, mnist_like(300, 6));
    }

    #[test]
    fn raw_values_in_unit_interval() {
        let d = mnist_like_raw(150, 1);
        assert!(d.as_flat().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(d.dim(), DIM);
    }

    #[test]
    fn fingerprint_distances_cover_paper_band() {
        // Some pairs should land within radius 17 (same digit), most
        // pairs well outside (different digits).
        let fps = mnist_like(1_000, 2);
        let mut within = 0usize;
        let mut total = 0usize;
        for i in 0..100 {
            for j in (i + 1)..100 {
                let dist = hamming_words(fps.row(i), fps.row(j));
                if dist <= 17 {
                    within += 1;
                }
                total += 1;
            }
        }
        let frac = within as f64 / total as f64;
        assert!(frac > 0.01, "no near pairs in the radius band: {frac}");
        assert!(frac < 0.6, "everything collapsed: {frac}");
    }

    #[test]
    fn same_cluster_pairs_are_closer() {
        // Generate two points per cluster by sampling a large batch and
        // verifying the *minimum* observed distance is small while the
        // median is large.
        let fps = mnist_like(500, 3);
        let mut dists: Vec<u32> = Vec::new();
        for i in 0..80 {
            for j in (i + 1)..80 {
                dists.push(hamming_words(fps.row(i), fps.row(j)));
            }
        }
        dists.sort_unstable();
        let min = dists[0];
        let median = dists[dists.len() / 2];
        assert!(min <= 17, "closest pair {min} outside paper band");
        assert!(median >= 15, "median pair {median} suspiciously close");
    }
}
