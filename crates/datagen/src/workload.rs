//! Ready-to-run experiment workloads.
//!
//! A workload bundles what §4 of the paper fixes per data set: the data
//! itself, the 100-point query set ("we randomly remove 100 points and
//! use it as the query set"), the radius sweep and the calibrated
//! `β/α` ratio.

use hlsh_families::sampling::rng_stream;
use hlsh_families::PaperDataset;
use hlsh_vec::{BinaryDataset, DenseDataset, MetricKind};
use rand::Rng;

use crate::{corel_like, covertype_like, mnist_like, webspam_like};

/// Samples `count` distinct sorted indexes from `0..n` (the paper's
/// query-removal procedure), deterministically.
///
/// # Panics
/// Panics if `count > n`.
pub fn sample_indices(n: usize, count: usize, seed: u64) -> Vec<usize> {
    assert!(count <= n, "cannot sample {count} of {n}");
    // Floyd's algorithm: uniform without replacement.
    let mut rng = rng_stream(seed, 0x5153_414D);
    let mut chosen = std::collections::BTreeSet::new();
    for j in (n - count)..n {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

/// A dense-vector workload (Corel, CoverType, Webspam analogs).
#[derive(Clone, Debug)]
pub struct DenseWorkload {
    /// Which paper data set this mimics.
    pub dataset: PaperDataset,
    /// The indexed points (query points removed).
    pub data: DenseDataset,
    /// The held-out query set.
    pub queries: DenseDataset,
    /// Metric to search under.
    pub metric: MetricKind,
    /// Figure 2 radius sweep.
    pub radii: Vec<f64>,
    /// The paper's `β/α` ratio for this data set.
    pub beta_over_alpha: f64,
}

/// A binary-fingerprint workload (MNIST analog).
#[derive(Clone, Debug)]
pub struct BinaryWorkload {
    /// Which paper data set this mimics.
    pub dataset: PaperDataset,
    /// The indexed fingerprints (query points removed).
    pub data: BinaryDataset,
    /// The held-out query set.
    pub queries: BinaryDataset,
    /// Figure 2 radius sweep (Hamming distances).
    pub radii: Vec<f64>,
    /// The paper's `β/α` ratio.
    pub beta_over_alpha: f64,
}

impl DenseWorkload {
    /// Builds the workload for one of the three dense paper data sets
    /// at `n` total points with `queries` of them held out.
    ///
    /// # Panics
    /// Panics for `PaperDataset::Mnist` (binary; use
    /// [`BinaryWorkload::paper`]) or if `queries >= n`.
    pub fn paper(dataset: PaperDataset, n: usize, queries: usize, seed: u64) -> Self {
        assert!(queries < n, "query set must be smaller than the data set");
        let mut data = match dataset {
            PaperDataset::Corel => corel_like(n, seed),
            PaperDataset::CoverType => covertype_like(n, seed),
            PaperDataset::Webspam => webspam_like(n, seed),
            PaperDataset::Mnist => panic!("MNIST is a binary workload"),
        };
        let idx = sample_indices(n, queries, seed ^ 0x51);
        let query_set = data.split_off_rows(&idx);
        Self {
            dataset,
            data,
            queries: query_set,
            metric: dataset.metric(),
            radii: dataset.figure2_radii(),
            beta_over_alpha: dataset.beta_over_alpha(),
        }
    }
}

impl BinaryWorkload {
    /// Builds the MNIST fingerprint workload at `n` total points with
    /// `queries` held out.
    ///
    /// # Panics
    /// Panics if `queries >= n`.
    pub fn paper(n: usize, queries: usize, seed: u64) -> Self {
        assert!(queries < n, "query set must be smaller than the data set");
        let mut data = mnist_like(n, seed);
        let idx = sample_indices(n, queries, seed ^ 0x51);
        let query_set = data.split_off_rows(&idx);
        Self {
            dataset: PaperDataset::Mnist,
            data,
            queries: query_set,
            radii: PaperDataset::Mnist.figure2_radii(),
            beta_over_alpha: PaperDataset::Mnist.beta_over_alpha(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_indices_properties() {
        let idx = sample_indices(1000, 100, 1);
        assert_eq!(idx.len(), 100);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.iter().all(|&i| i < 1000));
        assert_eq!(idx, sample_indices(1000, 100, 1));
        assert_ne!(idx, sample_indices(1000, 100, 2));
    }

    #[test]
    fn sample_indices_full_range() {
        let idx = sample_indices(5, 5, 3);
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_over_n_rejected() {
        let _ = sample_indices(3, 4, 0);
    }

    #[test]
    fn dense_workload_splits_cleanly() {
        let w = DenseWorkload::paper(PaperDataset::Corel, 500, 20, 9);
        assert_eq!(w.data.len(), 480);
        assert_eq!(w.queries.len(), 20);
        assert_eq!(w.metric, MetricKind::L2);
        assert_eq!(w.beta_over_alpha, 6.0);
        assert_eq!(w.radii.len(), 6);
    }

    #[test]
    fn binary_workload_splits_cleanly() {
        let w = BinaryWorkload::paper(400, 25, 4);
        assert_eq!(w.data.len(), 375);
        assert_eq!(w.queries.len(), 25);
        assert_eq!(w.radii, vec![12.0, 13.0, 14.0, 15.0, 16.0, 17.0]);
        assert_eq!(w.beta_over_alpha, 1.0);
    }

    #[test]
    #[should_panic(expected = "binary workload")]
    fn mnist_as_dense_rejected() {
        let _ = DenseWorkload::paper(PaperDataset::Mnist, 100, 10, 0);
    }
}
