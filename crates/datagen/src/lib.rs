//! Synthetic analogs of the EDBT'17 evaluation data sets, plus exact
//! ground truth.
//!
//! The paper evaluates on four public data sets (Corel Images,
//! CoverType, Webspam, MNIST) that are unavailable in this offline
//! environment. Each generator here reproduces the published **shape**
//! (`n`, `d`, value type, metric) and — the property the hybrid
//! strategy actually depends on — the **local density pattern**:
//!
//! * [`corel_like`]: colour-histogram-like clustered vectors whose
//!   intra-cluster L2 distances straddle the paper's radii (0.35–0.60);
//! * [`covertype_like`]: heavy-tailed cluster sizes with L1 radii in
//!   the thousands (3000–4000), like CoverType's dominant classes;
//! * [`webspam_like`]: a few *massive* near-duplicate direction
//!   clusters (outputs up to ~n/2 at cosine radius ≤ 0.1) over a
//!   diffuse background — the "hard query" regime of Figures 1 and 3;
//! * [`mnist_like`]: digit-style cluster structure in `[0,1]^780`,
//!   intended to be compressed to 64-bit SimHash fingerprints exactly
//!   as the paper does (radii 12–17 of 64 bits).
//!
//! Every generator takes `n` and a seed, so experiments run at any
//! scale deterministically. `hlsh_vec::io` parses the original files if
//! a user has them; the harness accepts either source.
//!
//! # Example
//!
//! Generate the standard benchmark mixture (the corpus the
//! `throughput`/`topk`/`loadgen` bins and the CI gates all use) and
//! check an index's answers against exact ground truth:
//!
//! ```
//! use hlsh_datagen::{benchmark_mixture, ground_truth};
//! use hlsh_vec::{PointSet, L2};
//!
//! let radius = 1.5;
//! let (mut data, cluster_of) = benchmark_mixture(8, 2_000, radius, 42);
//! assert_eq!(data.len(), 2_000);
//! assert_eq!(cluster_of.len(), 2_000);        // cluster label per point
//!
//! // Same seed ⇒ same corpus, bit for bit (what lets `loadgen`
//! // regenerate the server's corpus client-side).
//! let (again, _) = benchmark_mixture(8, 2_000, radius, 42);
//! assert_eq!(data.row(123), again.row(123));
//!
//! // Exact rNNR ground truth via one kernelized scan per query.
//! let queries = data.split_off_rows(&[0, 500, 1000]);
//! let truth = ground_truth(&data, &queries, &L2, radius);
//! assert_eq!(truth.len(), 3);
//! // The near-duplicate mega-cluster makes *some* query dense.
//! assert!(truth.iter().any(|ids| !ids.is_empty()));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod corel;
pub mod covertype;
pub mod groundtruth;
pub mod mixture;
pub mod mnist;
pub mod webspam;
pub mod workload;

pub use corel::corel_like;
pub use covertype::covertype_like;
pub use groundtruth::{ground_truth, ground_truth_topk};
pub use mixture::{benchmark_mixture, ClusterSpec, MixtureBuilder};
pub use mnist::mnist_like;
pub use webspam::webspam_like;
pub use workload::{BinaryWorkload, DenseWorkload};
