//! Synthetic analogs of the EDBT'17 evaluation data sets, plus exact
//! ground truth.
//!
//! The paper evaluates on four public data sets (Corel Images,
//! CoverType, Webspam, MNIST) that are unavailable in this offline
//! environment. Each generator here reproduces the published **shape**
//! (`n`, `d`, value type, metric) and — the property the hybrid
//! strategy actually depends on — the **local density pattern**:
//!
//! * [`corel_like`]: colour-histogram-like clustered vectors whose
//!   intra-cluster L2 distances straddle the paper's radii (0.35–0.60);
//! * [`covertype_like`]: heavy-tailed cluster sizes with L1 radii in
//!   the thousands (3000–4000), like CoverType's dominant classes;
//! * [`webspam_like`]: a few *massive* near-duplicate direction
//!   clusters (outputs up to ~n/2 at cosine radius ≤ 0.1) over a
//!   diffuse background — the "hard query" regime of Figures 1 and 3;
//! * [`mnist_like`]: digit-style cluster structure in `[0,1]^780`,
//!   intended to be compressed to 64-bit SimHash fingerprints exactly
//!   as the paper does (radii 12–17 of 64 bits).
//!
//! Every generator takes `n` and a seed, so experiments run at any
//! scale deterministically. `hlsh_vec::io` parses the original files if
//! a user has them; the harness accepts either source.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod corel;
pub mod covertype;
pub mod groundtruth;
pub mod mixture;
pub mod mnist;
pub mod webspam;
pub mod workload;

pub use corel::corel_like;
pub use covertype::covertype_like;
pub use groundtruth::{ground_truth, ground_truth_topk};
pub use mixture::{benchmark_mixture, ClusterSpec, MixtureBuilder};
pub use mnist::mnist_like;
pub use webspam::webspam_like;
pub use workload::{BinaryWorkload, DenseWorkload};
