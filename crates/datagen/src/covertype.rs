//! CoverType analog: n = 581,012, d = 54, L1 metric.
//!
//! The original is cartographic features with wildly different scales
//! (elevation in thousands of metres, binary soil indicators) and a
//! heavily imbalanced class structure (two forest types cover ~85% of
//! rows). Figure 2c sweeps L1 radii 3000–4000. With per-coordinate
//! sigma `s`, two intra-cluster points sit at expected L1 distance
//! `d·2s/√π ≈ 61·s` for d = 54, so sigmas of 30–90 place intra-cluster
//! distances across the 1800–5500 band — the sweep again crosses from
//! partial to whole clusters.

use hlsh_families::sampling::rng_stream;
use hlsh_vec::DenseDataset;

use crate::mixture::{uniform_center, ClusterSpec, MixtureBuilder, PostProcess};

/// Dimensionality of the CoverType analog.
pub const DIM: usize = 54;

/// Generates the CoverType analog with `n` points.
///
/// Cluster profile: 7 "cover types" with the real data's imbalance
/// (relative weights 36, 49, 6, 0.5, 1.6, 3, 3.5 — the published class
/// distribution) plus varied sigmas, centers spread over a
/// `[0, 4000]^54` feature box — **and a near-duplicate stratum (30%)
/// carved out of the dominant class**. The real CoverType is integer
/// cartographic data with large groups of (nearly) identical rows;
/// that stratum is what turns the biggest class's queries "hard": its
/// per-table collision retention under `w = 4r` rises with the radius
/// and crosses the hybrid decision boundary inside the paper's
/// 3000–4000 sweep.
pub fn covertype_like(n: usize, seed: u64) -> DenseDataset {
    let mut rng = rng_stream(seed, 0x434F_5654);
    // Near-duplicate stratum of the dominant cover type (relative
    // weight 38.4 ≈ 30% of the total): intra-pair L1 distance
    // ≈ 54·1.128·6 ≈ 365.
    let weights = [38.4, 25.0, 20.0, 6.2, 0.5, 1.6, 3.0, 3.5];
    let sigmas = [6.0, 55.0, 45.0, 45.0, 25.0, 30.0, 40.0, 35.0];
    let mut builder = MixtureBuilder::new(DIM).post_process(PostProcess::ClampNonNegative);
    for i in 0..weights.len() {
        let center = uniform_center(&mut rng, DIM, 200.0, 3800.0);
        builder = builder.cluster(ClusterSpec { weight: weights[i], center, sigma: sigmas[i] });
    }
    builder.sample(n, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsh_vec::dense::l1;

    #[test]
    fn shape_and_determinism() {
        let a = covertype_like(400, 5);
        assert_eq!(a.len(), 400);
        assert_eq!(a.dim(), DIM);
        assert_eq!(a, covertype_like(400, 5));
    }

    #[test]
    fn l1_radius_band_is_meaningful() {
        let d = covertype_like(3_000, 1);
        // Sample queries from the data; at r = 4000 they should find
        // a solid chunk of their own (broad) cluster but not everything.
        let mut nonzero = 0;
        for i in 0..20 {
            let q = d.row(i * 131).to_vec();
            let within = d.rows().filter(|row| l1(row, &q) <= 4000.0).count();
            assert!(within < d.len(), "radius 4000 captured everything");
            if within > 1 {
                nonzero += 1;
            }
        }
        assert!(nonzero >= 10, "too few queries found neighbors: {nonzero}");
    }

    #[test]
    fn dominant_cluster_creates_hard_queries() {
        // Queries in the two big clusters should see far more
        // 3500-neighbors than queries in the tiny clusters. Sample
        // densely enough that the sub-1% clusters are hit.
        let d = covertype_like(4_000, 2);
        let counts: Vec<usize> = (0..100)
            .map(|i| {
                let q = d.row(i * 39).to_vec();
                d.rows().filter(|row| l1(row, &q) <= 3500.0).count()
            })
            .collect();
        let max = counts.iter().copied().max().unwrap();
        let min = counts.iter().copied().min().unwrap();
        assert!(max > 10 * (min + 1), "no hard/easy split: min {min} max {max}");
    }
}
