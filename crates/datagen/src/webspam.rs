//! Webspam analog: n = 350,000, d = 254, cosine metric.
//!
//! This is the paper's showcase data set: Figure 3 shows that even at
//! tiny cosine radii (r ≤ 0.1) the output size of some queries exceeds
//! n/2 while others find almost nothing — the "hard query" regime of
//! Figure 1 where classic LSH drowns in duplicate removal. The cause in
//! the real data is near-duplicate spam pages: enormous groups of
//! almost-identical documents.
//!
//! We reproduce the regime directly: one massive near-duplicate hard
//! region (60% of the data) made of three farms of graded tightness
//! around one direction, a handful of medium clusters that enter the
//! output as the radius grows, and a diffuse background that makes
//! other queries trivially easy.
//!
//! Geometry: a point is `normalize(u + s·g)` for cluster direction `u`
//! and Gaussian `g`; two such points have expected cosine similarity
//! `≈ 1/(1 + 2s²·d)` to a same-cluster peer, so farm spreads
//! `s ∈ {0.0005, 0.0046, 0.009}` at d = 254 put intra-farm cosine
//! distances near 0.0002, 0.011 and 0.04.

use hlsh_families::sampling::rng_stream;
use hlsh_vec::DenseDataset;

use crate::mixture::{unit_direction, ClusterSpec, MixtureBuilder, PostProcess};

/// Dimensionality of the Webspam analog.
pub const DIM: usize = 254;

/// Generates the Webspam analog with `n` points (unit L2 norm rows).
///
/// Composition (geometry: a point `normalize(u + s·g)` has expected
/// cosine similarity `1/√(1+s²d)` to the center and `1/(1+s²d)` to a
/// same-cluster peer):
///
/// * **hard region** (60%), one direction, three graded spam farms of
///   20% each (`s ∈ {0.0005, 0.0046, 0.009}`, pairwise cosine
///   distances ≈ 0.0002 / 0.011 / 0.04, single-atom SimHash collision
///   probabilities ≈ 0.997 / 0.95 / 0.91). Any hard query's output
///   exceeds n/2 at the swept radii (the Figure 3 maximum); the tightest
///   farm's queries sit past the Algorithm 2 boundary at every k, the
///   middle farm's cross it as k falls from 30 (r = 0.05) to 21
///   (r = 0.1), and the loosest farm's stay on the LSH side — the
///   rising linear-call curve of Figure 3 (right);
/// * **medium clusters** (8 × 1.5%): spreads 0.012–0.019 — outputs
///   that grow across the radius sweep;
/// * **background** (25%): random directions, pairwise cosine distance
///   ≈ 1 — the easy queries with empty outputs.
pub fn webspam_like(n: usize, seed: u64) -> DenseDataset {
    let mut rng = rng_stream(seed, 0x5745_4253);
    let mut builder = MixtureBuilder::new(DIM).post_process(PostProcess::NormalizeL2);

    // Hard region (60% of the data) around one direction: three spam
    // farms of graded tightness. All of them land in each other's
    // candidate sets (they share the direction), so a hard query's
    // candSize is ~0.6·n regardless of which farm it sits in, while
    // its #collisions depends on the farm's tightness — the knob that
    // spreads the Algorithm 2 flips across the radius sweep.
    let u_hard = unit_direction(&mut rng, DIM);
    for &(weight, sigma) in &[(0.20, 0.0005), (0.20, 0.0046), (0.20, 0.009)] {
        builder = builder.cluster(ClusterSpec { weight, center: u_hard.clone(), sigma });
    }

    // Medium clusters: outputs grow with the radius sweep.
    for i in 0..8 {
        let u = unit_direction(&mut rng, DIM);
        let s = 0.012 + 0.001 * i as f64;
        builder = builder.cluster(ClusterSpec { weight: 0.015, center: u, sigma: s });
    }

    // Diffuse background: random directions, pairwise cosine distance
    // ≈ 1 — no neighbors at r ≤ 0.1.
    builder = builder.cluster(ClusterSpec { weight: 0.28, center: vec![0.0; DIM], sigma: 1.0 });
    // (Weights: 0.60 hard region + 0.12 medium + 0.28 background.)

    builder.sample(n, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsh_vec::dense::cosine_distance;

    #[test]
    fn shape_and_determinism() {
        let a = webspam_like(600, 3);
        assert_eq!(a.len(), 600);
        assert_eq!(a.dim(), DIM);
        assert_eq!(a, webspam_like(600, 3));
    }

    #[test]
    fn rows_are_unit_norm() {
        let d = webspam_like(200, 1);
        for row in d.rows() {
            let norm = hlsh_vec::dense::norm(row);
            assert!((norm - 1.0).abs() < 1e-4, "norm {norm}");
        }
    }

    #[test]
    fn output_sizes_span_tiny_to_huge() {
        // The Figure 3 (left) property: at r = 0.1, max output ≈ n/2,
        // min output ≈ 0.
        let n = 4_000;
        let d = webspam_like(n, 2);
        let counts: Vec<usize> = (0..60)
            .map(|i| {
                let q = d.row(i * 61).to_vec();
                d.rows().filter(|row| cosine_distance(row, &q) <= 0.1).count()
            })
            .collect();
        let max = counts.iter().copied().max().unwrap();
        let min = counts.iter().copied().min().unwrap();
        assert!(max as f64 >= 0.25 * n as f64, "no hard queries: max {max}");
        assert!(min <= 5, "no easy queries: min {min}");
    }

    #[test]
    fn output_grows_with_radius() {
        let n = 3_000;
        let d = webspam_like(n, 4);
        // Use a query from the first mega cluster (most points are
        // cluster members, so row 0 is very likely one).
        let q = d.row(0).to_vec();
        let at = |r: f64| d.rows().filter(|row| cosine_distance(row, &q) <= r).count();
        let c05 = at(0.05);
        let c10 = at(0.10);
        assert!(c10 >= c05, "output must be monotone in r");
    }
}
