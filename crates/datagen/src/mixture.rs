//! Gaussian-mixture generation with per-cluster densities.
//!
//! Every synthetic data set in this crate is some mixture of Gaussian
//! clusters; what differs is the cluster-count/size/spread profile.
//! [`MixtureBuilder`] captures the shared machinery: deterministic
//! sampling, per-cluster weights, per-cluster isotropic sigmas, and
//! optional post-processing (clipping, normalisation).

use hlsh_families::sampling::{rng_stream, standard_normal};
use hlsh_vec::DenseDataset;
use rand::rngs::StdRng;
use rand::Rng;

/// One mixture component.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Sampling weight (relative; normalised internally).
    pub weight: f64,
    /// Component mean.
    pub center: Vec<f32>,
    /// Isotropic standard deviation.
    pub sigma: f64,
}

/// Post-processing applied to every sampled point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PostProcess {
    /// Leave coordinates as sampled.
    None,
    /// Clamp coordinates to `[0, ∞)` (histogram-like data).
    ClampNonNegative,
    /// Clamp to `[0, 1]` (pixel-like data).
    ClampUnit,
    /// Scale each point to unit L2 norm (direction data).
    NormalizeL2,
}

/// Builds a clustered dense data set.
#[derive(Clone, Debug)]
pub struct MixtureBuilder {
    dim: usize,
    clusters: Vec<ClusterSpec>,
    post: PostProcess,
}

impl MixtureBuilder {
    /// Starts an empty mixture of the given dimensionality.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self { dim, clusters: Vec::new(), post: PostProcess::None }
    }

    /// Adds a component.
    ///
    /// # Panics
    /// Panics if the center dimensionality mismatches, `weight <= 0`,
    /// or `sigma < 0`.
    pub fn cluster(mut self, spec: ClusterSpec) -> Self {
        assert_eq!(spec.center.len(), self.dim, "center dimensionality mismatch");
        assert!(spec.weight > 0.0, "weight must be positive");
        assert!(spec.sigma >= 0.0, "sigma must be non-negative");
        self.clusters.push(spec);
        self
    }

    /// Sets the post-processing mode.
    pub fn post_process(mut self, post: PostProcess) -> Self {
        self.post = post;
        self
    }

    /// Number of components so far.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Samples `n` points deterministically. Returns the data set and
    /// the component index of every point (useful as weak labels).
    ///
    /// # Panics
    /// Panics if no cluster was added.
    pub fn sample(&self, n: usize, seed: u64) -> (DenseDataset, Vec<u32>) {
        assert!(!self.clusters.is_empty(), "mixture needs at least one cluster");
        let mut rng = rng_stream(seed, 0x4D49_5854);
        let total_weight: f64 = self.clusters.iter().map(|c| c.weight).sum();
        // Cumulative weights for roulette selection.
        let mut cumulative = Vec::with_capacity(self.clusters.len());
        let mut acc = 0.0;
        for c in &self.clusters {
            acc += c.weight / total_weight;
            cumulative.push(acc);
        }

        let mut data = DenseDataset::with_capacity(self.dim, n);
        let mut labels = Vec::with_capacity(n);
        let mut point = vec![0.0f32; self.dim];
        for _ in 0..n {
            let u: f64 = rng.gen();
            let ci = cumulative.partition_point(|&c| c < u).min(self.clusters.len() - 1);
            let cluster = &self.clusters[ci];
            self.sample_point(cluster, &mut rng, &mut point);
            data.push(&point);
            labels.push(ci as u32);
        }
        (data, labels)
    }

    fn sample_point(&self, cluster: &ClusterSpec, rng: &mut StdRng, out: &mut [f32]) {
        for (o, &c) in out.iter_mut().zip(&cluster.center) {
            *o = c + (cluster.sigma * standard_normal(rng)) as f32;
        }
        match self.post {
            PostProcess::None => {}
            PostProcess::ClampNonNegative => {
                out.iter_mut().for_each(|v| *v = v.max(0.0));
            }
            PostProcess::ClampUnit => {
                out.iter_mut().for_each(|v| *v = v.clamp(0.0, 1.0));
            }
            PostProcess::NormalizeL2 => {
                let norm = out.iter().map(|v| (*v as f64).powi(2)).sum::<f64>().sqrt();
                if norm > 0.0 {
                    let inv = (1.0 / norm) as f32;
                    out.iter_mut().for_each(|v| *v *= inv);
                }
            }
        }
    }
}

/// A ready-made mixture profile for benchmarks and equivalence tests:
/// one near-duplicate mega-cluster (~30% of points, queries there are
/// "hard" and drive the hybrid decision to the linear arm), a handful
/// of medium clusters, and a diffuse background (queries there are
/// "easy" and stay on the LSH arm).
///
/// Intra-cluster L2 distances scale with `radius`, so querying at `r ≈
/// radius` splits the query set across both Algorithm 2 arms — exactly
/// the regime batch-equivalence tests must cover.
pub fn benchmark_mixture(dim: usize, n: usize, radius: f64, seed: u64) -> (DenseDataset, Vec<u32>) {
    let mut rng = rng_stream(seed, 0x424D_4958);
    let unit = radius / (2.0 * dim as f64).sqrt();
    let spread = (6.0 * radius) as f32;
    let mut builder = MixtureBuilder::new(dim)
        // Near-duplicate mega-cluster: pairwise distance ≈ 0.4·radius.
        .cluster(ClusterSpec {
            weight: 30.0,
            center: uniform_center(&mut rng, dim, -spread, spread),
            sigma: 0.3 * unit,
        })
        // Diffuse background: pairwise distance ≈ 8·radius.
        .cluster(ClusterSpec { weight: 40.0, center: vec![0.0; dim], sigma: 8.0 * unit });
    // Medium clusters: pairwise distance ≈ 1.4·radius.
    for _ in 0..6 {
        builder = builder.cluster(ClusterSpec {
            weight: 5.0,
            center: uniform_center(&mut rng, dim, -spread, spread),
            sigma: unit,
        });
    }
    builder.sample(n, seed)
}

/// Samples a random center uniformly from `[lo, hi]^dim`.
pub fn uniform_center(rng: &mut StdRng, dim: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..dim).map(|_| rng.gen::<f32>() * (hi - lo) + lo).collect()
}

/// Samples a random unit-norm direction.
pub fn unit_direction(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    loop {
        let v: Vec<f32> = (0..dim).map(|_| standard_normal(rng) as f32).collect();
        let norm = v.iter().map(|x| (*x as f64).powi(2)).sum::<f64>().sqrt();
        if norm > 1e-6 {
            return v.iter().map(|x| (*x as f64 / norm) as f32).collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsh_vec::dense::{l2, norm};

    fn two_cluster(dim: usize) -> MixtureBuilder {
        MixtureBuilder::new(dim)
            .cluster(ClusterSpec { weight: 3.0, center: vec![0.0; dim], sigma: 0.1 })
            .cluster(ClusterSpec { weight: 1.0, center: vec![10.0; dim], sigma: 0.1 })
    }

    #[test]
    fn sample_is_deterministic() {
        let m = two_cluster(4);
        let (a, la) = m.sample(100, 9);
        let (b, lb) = m.sample(100, 9);
        assert_eq!(a, b);
        assert_eq!(la, lb);
        let (c, _) = m.sample(100, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn weights_are_respected() {
        let m = two_cluster(2);
        let (_, labels) = m.sample(10_000, 1);
        let c0 = labels.iter().filter(|&&l| l == 0).count();
        let frac = c0 as f64 / labels.len() as f64;
        assert!((frac - 0.75).abs() < 0.03, "cluster-0 fraction {frac}");
    }

    #[test]
    fn points_stay_near_their_center() {
        let m = two_cluster(8);
        let (data, labels) = m.sample(500, 2);
        for (i, &l) in labels.iter().enumerate() {
            let center = if l == 0 { vec![0.0f32; 8] } else { vec![10.0f32; 8] };
            let d = l2(data.row(i), &center);
            // sigma=0.1, dim=8 → distance concentrated near 0.1·√8 ≈ 0.28.
            assert!(d < 1.5, "point {i} strayed {d} from its center");
        }
    }

    #[test]
    fn clamp_nonnegative_works() {
        let m = MixtureBuilder::new(3)
            .cluster(ClusterSpec { weight: 1.0, center: vec![0.0; 3], sigma: 1.0 })
            .post_process(PostProcess::ClampNonNegative);
        let (data, _) = m.sample(200, 3);
        assert!(data.as_flat().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn clamp_unit_works() {
        let m = MixtureBuilder::new(3)
            .cluster(ClusterSpec { weight: 1.0, center: vec![0.5; 3], sigma: 2.0 })
            .post_process(PostProcess::ClampUnit);
        let (data, _) = m.sample(200, 4);
        assert!(data.as_flat().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn normalize_l2_gives_unit_vectors() {
        let m = MixtureBuilder::new(5)
            .cluster(ClusterSpec { weight: 1.0, center: vec![1.0; 5], sigma: 0.5 })
            .post_process(PostProcess::NormalizeL2);
        let (data, _) = m.sample(100, 5);
        for row in data.rows() {
            assert!((norm(row) - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn unit_direction_is_unit() {
        let mut rng = rng_stream(1, 1);
        let u = unit_direction(&mut rng, 40);
        assert!((norm(&u) - 1.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn empty_mixture_rejected() {
        let _ = MixtureBuilder::new(2).sample(10, 0);
    }

    #[test]
    #[should_panic(expected = "center dimensionality mismatch")]
    fn wrong_center_dim_rejected() {
        let _ = MixtureBuilder::new(2).cluster(ClusterSpec {
            weight: 1.0,
            center: vec![0.0; 3],
            sigma: 1.0,
        });
    }
}
