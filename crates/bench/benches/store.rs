//! Criterion benches of the storage/execution refactor: hashmap vs
//! frozen bucket lookups, and single-query vs batch-engine throughput
//! on the mixture workload.

use criterion::{criterion_group, criterion_main, Criterion};
use hlsh_core::{CostModel, IndexBuilder, QueryEngine, Strategy};
use hlsh_datagen::benchmark_mixture;
use hlsh_families::PStableL2;
use hlsh_vec::{DenseDataset, L2};

type Index<B> = hlsh_core::HybridLshIndex<DenseDataset, PStableL2, L2, B>;

struct Setup {
    map_index: Index<hlsh_core::MapStore>,
    frozen_index: Index<hlsh_core::FrozenStore>,
    queries: Vec<Vec<f32>>,
    r: f64,
}

fn setup() -> Setup {
    let r = 1.5;
    let (mut data, _) = benchmark_mixture(24, 6_000, r, 31);
    let q_rows: Vec<usize> = (0..64).map(|i| i * 90).collect();
    let queries_ds = data.split_off_rows(&q_rows);
    let queries: Vec<Vec<f32>> =
        (0..queries_ds.len()).map(|i| queries_ds.row(i).to_vec()).collect();
    let map_index = IndexBuilder::new(PStableL2::new(24, 2.0 * r), L2)
        .tables(20)
        .hash_len(7)
        .seed(17)
        .cost_model(CostModel::from_ratio(6.0))
        .build(data);
    let frozen_index = {
        let (mut data2, _) = benchmark_mixture(24, 6_000, r, 31);
        data2.split_off_rows(&q_rows);
        IndexBuilder::new(PStableL2::new(24, 2.0 * r), L2)
            .tables(20)
            .hash_len(7)
            .seed(17)
            .cost_model(CostModel::from_ratio(6.0))
            .build_frozen(data2)
    };
    Setup { map_index, frozen_index, queries, r }
}

fn bench_lookup_backends(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("bucket_lookup");
    group.bench_function("hashmap", |b| {
        let mut qi = 0;
        b.iter(|| {
            let q = &s.queries[qi % s.queries.len()];
            qi += 1;
            let mut hits = 0usize;
            for table in s.map_index.raw_tables() {
                if let Some(bucket) = table.bucket(std::hint::black_box(&q[..])) {
                    hits += bucket.len();
                }
            }
            std::hint::black_box(hits)
        })
    });
    group.bench_function("frozen_csr", |b| {
        let mut qi = 0;
        b.iter(|| {
            let q = &s.queries[qi % s.queries.len()];
            qi += 1;
            let mut hits = 0usize;
            for table in s.frozen_index.raw_tables() {
                if let Some(bucket) = table.bucket(std::hint::black_box(&q[..])) {
                    hits += bucket.len();
                }
            }
            std::hint::black_box(hits)
        })
    });
    group.finish();
}

fn bench_query_paths(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("mixture_queryset");
    group.bench_function("sequential_map", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &s.queries {
                total += s.map_index.query(q, s.r).ids.len();
            }
            std::hint::black_box(total)
        })
    });
    group.bench_function("engine_reuse_frozen", |b| {
        b.iter(|| {
            let mut engine = QueryEngine::new();
            let mut total = 0usize;
            for q in &s.queries {
                total += engine.query(&s.frozen_index, q, s.r).ids.len();
            }
            std::hint::black_box(total)
        })
    });
    group.bench_function("batch_frozen_all_cores", |b| {
        b.iter(|| {
            let out = s.frozen_index.query_batch(&s.queries, s.r);
            std::hint::black_box(out.iter().map(|o| o.ids.len()).sum::<usize>())
        })
    });
    group.bench_function("batch_frozen_4_threads", |b| {
        b.iter(|| {
            let out = s.frozen_index.query_batch_with_strategy(
                &s.queries,
                s.r,
                Strategy::Hybrid,
                Some(4),
            );
            std::hint::black_box(out.iter().map(|o| o.ids.len()).sum::<usize>())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_lookup_backends, bench_query_paths
}
criterion_main!(benches);
