//! Criterion benches of whole queries: hybrid vs classic LSH vs linear
//! on a small Webspam-like workload, split into an easy query (sparse
//! region) and a hard query (near-duplicate mega-cluster) — the two
//! regimes of Figure 1.

use criterion::{criterion_group, criterion_main, Criterion};
use hlsh_core::{CostModel, IndexBuilder, Strategy};
use hlsh_datagen::webspam_like;
use hlsh_families::{k_paper, LshFamily, SimHash};
use hlsh_vec::dense::cosine_distance;
use hlsh_vec::Cosine;

struct Setup {
    index: hlsh_core::HybridLshIndex<hlsh_vec::DenseDataset, SimHash, Cosine>,
    easy: Vec<f32>,
    hard: Vec<f32>,
}

fn setup() -> Setup {
    let n = 8_000;
    let r = 0.08;
    let mut data = webspam_like(n, 77);
    let family = SimHash::new(data.dim());
    let k = k_paper(0.1, 50, family.collision_prob(r)).min(64);

    // Pick a hard query (many 0.08-neighbors) and an easy one (few)
    // from the data itself, then remove them from the indexed set.
    let count_near = |data: &hlsh_vec::DenseDataset, q: &[f32]| {
        data.rows().filter(|row| cosine_distance(row, q) <= r).count()
    };
    let mut hard_idx = 0;
    let mut easy_idx = 0;
    let (mut best_hard, mut best_easy) = (0usize, usize::MAX);
    for i in 0..200 {
        let c = count_near(&data, data.row(i * 17));
        if c > best_hard {
            best_hard = c;
            hard_idx = i * 17;
        }
        if c < best_easy {
            best_easy = c;
            easy_idx = i * 17;
        }
    }
    let mut split = [easy_idx, hard_idx];
    split.sort_unstable();
    let removed = data.split_off_rows(&split);
    let (easy, hard) = if split[0] == easy_idx {
        (removed.row(0).to_vec(), removed.row(1).to_vec())
    } else {
        (removed.row(1).to_vec(), removed.row(0).to_vec())
    };

    let index = IndexBuilder::new(family, Cosine)
        .tables(50)
        .hash_len(k)
        .seed(7)
        .cost_model(CostModel::from_ratio(10.0))
        .build(data);
    Setup { index, easy, hard }
}

fn bench_queries(c: &mut Criterion) {
    let s = setup();
    let r = 0.08;
    let mut group = c.benchmark_group("webspam8k_query");
    for (qname, q) in [("easy", &s.easy), ("hard", &s.hard)] {
        for strategy in [Strategy::Hybrid, Strategy::LshOnly, Strategy::LinearOnly] {
            group.bench_function(format!("{qname}_{strategy}"), |b| {
                b.iter(|| {
                    let out =
                        s.index.query_with_strategy(std::hint::black_box(&q[..]), r, strategy);
                    std::hint::black_box(out.ids.len())
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_queries
}
criterion_main!(benches);
