//! Criterion micro benches of the HyperLogLog primitives that gate the
//! hybrid overhead: insert, merge (the `O(mL)` query-time cost), and
//! estimation — across the register counts of the `ablate_m` sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hlsh_hll::{HllConfig, HyperLogLog, MergeAccumulator};

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("hll_insert");
    for precision in [5u8, 7, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(1usize << precision),
            &precision,
            |b, &p| {
                let cfg = HllConfig::new(p, 1);
                let mut sketch = HyperLogLog::new(cfg);
                let mut i = 0u64;
                b.iter(|| {
                    sketch.insert(std::hint::black_box(i));
                    i = i.wrapping_add(1);
                });
            },
        );
    }
    group.finish();
}

fn bench_merge_l_tables(c: &mut Criterion) {
    // The paper's per-query overhead: merging L = 50 bucket sketches.
    let mut group = c.benchmark_group("hll_merge_50_buckets");
    for precision in [5u8, 7, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(1usize << precision),
            &precision,
            |b, &p| {
                let cfg = HllConfig::new(p, 2);
                let sketches: Vec<HyperLogLog> = (0..50)
                    .map(|t| {
                        let mut s = HyperLogLog::new(cfg);
                        for i in 0..1_000u64 {
                            s.insert(i * 50 + t);
                        }
                        s
                    })
                    .collect();
                b.iter(|| {
                    let mut acc = MergeAccumulator::new(cfg);
                    for s in &sketches {
                        acc.add_sketch(std::hint::black_box(s));
                    }
                    std::hint::black_box(acc.estimate())
                });
            },
        );
    }
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let cfg = HllConfig::new(7, 3);
    let mut sketch = HyperLogLog::new(cfg);
    for i in 0..100_000u64 {
        sketch.insert(i);
    }
    c.bench_function("hll_estimate_m128", |b| b.iter(|| std::hint::black_box(sketch.estimate())));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_insert, bench_merge_l_tables, bench_estimate
}
criterion_main!(benches);
