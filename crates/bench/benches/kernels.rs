//! Criterion benches of the numeric kernels: chunked vs scalar
//! distance primitives across the paper's dimensionality range,
//! one-at-a-time vs one-to-many candidate verification, and packed
//! matrix–vector hashing vs `k` separate scalar dot products.
//!
//! `d ∈ {16, 64, 256, 960}` spans Corel (32), CoverType (54), MNIST
//! (784) and GIST-like (960) regimes. The committed baseline lives in
//! `BENCH_kernels.json` at the repo root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hlsh_families::family::{combine_atoms, GFunction};
use hlsh_families::sampling::{normal_vector, rng_stream};
use hlsh_families::{LshFamily, PStableL2};
use hlsh_vec::{dense, kernels};

const DIMS: [usize; 4] = [16, 64, 256, 960];

fn filled(n: usize, phase: f32) -> Vec<f32> {
    (0..n).map(|i| ((i as f32) * 0.173 + phase).sin() * 2.0).collect()
}

fn bench_pair_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("l2_sq");
    for d in DIMS {
        let a = filled(d, 0.0);
        let b = filled(d, 1.9);
        group.bench_with_input(BenchmarkId::new("scalar", d), &d, |bch, _| {
            bch.iter(|| dense::l2_sq(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("chunked", d), &d, |bch, _| {
            bch.iter(|| kernels::l2_sq(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dot");
    for d in DIMS {
        let a = filled(d, 0.4);
        let b = filled(d, 2.7);
        group.bench_with_input(BenchmarkId::new("scalar", d), &d, |bch, _| {
            bch.iter(|| dense::dot(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("chunked", d), &d, |bch, _| {
            bch.iter(|| kernels::dot(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("l1");
    for d in DIMS {
        let a = filled(d, 0.8);
        let b = filled(d, 3.1);
        group.bench_with_input(BenchmarkId::new("scalar", d), &d, |bch, _| {
            bch.iter(|| dense::l1(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("chunked", d), &d, |bch, _| {
            bch.iter(|| kernels::l1(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    group.finish();
}

/// S3 verification: per-candidate scalar distance calls (the pre-kernel
/// engine), per-candidate chunked calls, and the one-to-many kernel
/// with its early-exit radius bound.
fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify");
    for d in [64usize, 256] {
        let n = 4096;
        let flat = filled(n * d, 0.3);
        let q = filled(d, 5.0);
        let ids: Vec<u32> = (0..n as u32).step_by(4).collect();
        // Median candidate distance: half accept, half (early-exit) reject.
        let mut dists: Vec<f64> = ids
            .iter()
            .map(|&id| kernels::l2_sq(&flat[id as usize * d..(id as usize + 1) * d], &q))
            .collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let r_sq = dists[dists.len() / 2];
        let r = r_sq.sqrt();

        group.bench_with_input(BenchmarkId::new("one_at_a_time_scalar", d), &d, |bch, _| {
            bch.iter(|| {
                let mut out = Vec::new();
                for &id in &ids {
                    let row = &flat[id as usize * d..(id as usize + 1) * d];
                    if dense::l2(std::hint::black_box(row), &q) <= r {
                        out.push(id);
                    }
                }
                std::hint::black_box(out.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("one_at_a_time_chunked", d), &d, |bch, _| {
            bch.iter(|| {
                let mut out = Vec::new();
                for &id in &ids {
                    let row = &flat[id as usize * d..(id as usize + 1) * d];
                    if kernels::l2(std::hint::black_box(row), &q) <= r {
                        out.push(id);
                    }
                }
                std::hint::black_box(out.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("one_to_many", d), &d, |bch, _| {
            bch.iter(|| {
                let mut out = Vec::new();
                kernels::l2_sq_one_to_many(
                    std::hint::black_box(&flat),
                    d,
                    &ids,
                    &q,
                    r_sq,
                    &mut out,
                );
                std::hint::black_box(out.len())
            })
        });
    }
    group.finish();
}

/// Per-query hashing cost: all K projections through the packed
/// matrix–vector kernel (the shipped `bucket_key`) vs the pre-change
/// construction of K separate scalar dot products.
fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("k_projections");
    let k = 7; // the paper's Corel setting
    for d in DIMS {
        let family = PStableL2::new(d, 4.0);
        let g = family.sample(k, &mut rng_stream(11, 0));
        // Reference rows/shifts sampled the same way the family does.
        let mut rng = rng_stream(11, 1);
        let rows: Vec<Vec<f32>> = (0..k).map(|_| normal_vector(&mut rng, d)).collect();
        let shifts: Vec<f64> = (0..k).map(|i| i as f64 * 0.37).collect();
        let q = filled(d, 1.2);

        group.bench_with_input(BenchmarkId::new("k_scalar_dots", d), &d, |bch, _| {
            bch.iter(|| {
                combine_atoms(rows.iter().zip(&shifts).map(|(row, b)| {
                    ((dense::dot(std::hint::black_box(row), &q) + b) / 4.0).floor() as i64 as u64
                }))
            })
        });
        group.bench_with_input(BenchmarkId::new("packed_matvec", d), &d, |bch, _| {
            bch.iter(|| g.bucket_key(std::hint::black_box(&q)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(100))
        .measurement_time(std::time::Duration::from_millis(400));
    targets = bench_pair_kernels, bench_verify, bench_hashing
}
criterion_main!(benches);
