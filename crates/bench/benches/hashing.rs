//! Criterion micro benches of Step S1: g-function evaluation for every
//! LSH family at paper-like parameters. The paper argues the hybrid
//! overhead `O(mL)` is "often smaller than (or comparable to) the cost
//! of Step S1" — these benches make both sides of that comparison
//! measurable.

use criterion::{criterion_group, criterion_main, Criterion};
use hlsh_families::sampling::rng_stream;
use hlsh_families::{BitSampling, GFunction, LshFamily, MinHash, PStableL1, PStableL2, SimHash};

fn bench_bitsampling(c: &mut Criterion) {
    let family = BitSampling::new(64);
    let g = family.sample(15, &mut rng_stream(1, 0));
    let p = [0xDEAD_BEEF_CAFE_F00Du64];
    c.bench_function("g_bitsampling_k15_d64", |b| {
        b.iter(|| std::hint::black_box(g.bucket_key(std::hint::black_box(&p[..]))))
    });
}

fn bench_simhash(c: &mut Criterion) {
    // Webspam setting: d = 254, k ≈ 30.
    let family = SimHash::new(254);
    let g = family.sample(30, &mut rng_stream(2, 0));
    let p: Vec<f32> = (0..254).map(|i| (i as f32 * 0.173).sin()).collect();
    c.bench_function("g_simhash_k30_d254", |b| {
        b.iter(|| std::hint::black_box(g.bucket_key(std::hint::black_box(&p))))
    });
}

fn bench_pstable_l2(c: &mut Criterion) {
    // Corel setting: d = 32, k = 7.
    let family = PStableL2::new(32, 1.0);
    let g = family.sample(7, &mut rng_stream(3, 0));
    let p: Vec<f32> = (0..32).map(|i| (i as f32 * 0.39).cos()).collect();
    c.bench_function("g_pstable_l2_k7_d32", |b| {
        b.iter(|| std::hint::black_box(g.bucket_key(std::hint::black_box(&p))))
    });
}

fn bench_pstable_l1(c: &mut Criterion) {
    // CoverType setting: d = 54, k = 8.
    let family = PStableL1::new(54, 4000.0);
    let g = family.sample(8, &mut rng_stream(4, 0));
    let p: Vec<f32> = (0..54).map(|i| 1000.0 + i as f32 * 17.0).collect();
    c.bench_function("g_pstable_l1_k8_d54", |b| {
        b.iter(|| std::hint::black_box(g.bucket_key(std::hint::black_box(&p))))
    });
}

fn bench_minhash(c: &mut Criterion) {
    let family = MinHash::new(256);
    let g = family.sample(4, &mut rng_stream(5, 0));
    let p = [0xF0F0_F0F0u64, 0x1234_5678, 0, 0xFFFF];
    c.bench_function("g_minhash_k4_u256", |b| {
        b.iter(|| std::hint::black_box(g.bucket_key(std::hint::black_box(&p[..]))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_bitsampling, bench_simhash, bench_pstable_l2, bench_pstable_l1, bench_minhash
}
criterion_main!(benches);
