//! Plain-text table formatting + CSV emission for experiment output.

/// A simple column-aligned text table that can also serialise itself
/// as CSV (printed after the human-readable block so results are easy
/// to scrape into plots).
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders CSV (header + rows, comma-separated, quotes only when
    /// needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Prints both representations to stdout (the CSV block prefixed
    /// with `# csv:` lines for easy grepping).
    pub fn print(&self) {
        println!("{}", self.render());
        for line in self.to_csv().lines() {
            println!("# csv: {line}");
        }
        println!();
    }
}

/// Formats a radius without float-noise: integers print bare, fractions
/// with two decimals (`0.4` not `0.39999999999999997`).
pub fn fmt_radius(r: f64) -> String {
    if r.fract().abs() < 1e-9 {
        format!("{}", r as i64)
    } else {
        format!("{r:.2}")
    }
}

/// Formats seconds with 4 significant decimals (the paper's axes).
pub fn secs(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a percentage with 2 decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "20000".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("long-header"));
        let lines: Vec<&str> = r.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["x,y".into(), "pla\"in".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"pla\"\"in\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(0.123456), "0.1235");
        assert_eq!(pct(0.1754), "17.54%");
        assert_eq!(fmt_radius(12.0), "12");
        assert_eq!(fmt_radius(0.05), "0.05");
        assert_eq!(fmt_radius(0.35 + 0.05), "0.40");
    }
}
