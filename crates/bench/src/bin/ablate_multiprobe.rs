//! Ablation: hybrid search on top of multi-probe LSH (the paper's §5
//! future work).
//!
//! Multi-probe trades tables for probes: with L = 10 tables (5× less
//! memory than the paper's 50) and T probes per table, recall recovers
//! as T grows while the probed volume — and therefore the duplicate-
//! removal cost the hybrid model guards against — grows with it.
//!
//! ```text
//! cargo run --release -p hlsh-bench --bin ablate_multiprobe [--scale F]
//! ```

use hlsh_bench::experiment::{measure_radius, resolve_cost, ExperimentConfig};
use hlsh_bench::tablefmt::Table;
use hlsh_bench::CommonArgs;
use hlsh_datagen::BinaryWorkload;
use hlsh_families::{k_paper, BitSampling, LshFamily, PaperDataset};
use hlsh_vec::Hamming;

fn main() {
    let args = CommonArgs::from_env();
    let mut base = ExperimentConfig::from_args(&args, PaperDataset::Mnist);
    base.l = 10; // fewer tables; probes make up the recall
    let w = BinaryWorkload::paper(base.n, base.queries, base.seed);
    let family = BitSampling::new(64);
    let r = 14.0;
    let k = k_paper(base.delta, base.l, family.collision_prob(r)).min(64);
    let cost = resolve_cost(&base, &w.data, &Hamming);

    let mut table = Table::new(
        &format!("Ablation: multi-probe hybrid (MNIST, r = {r}, L = {}, k = {k})", base.l),
        &["probes/table", "hybrid s", "LSH s", "hybrid recall", "LSH recall", "LS calls %"],
    );
    for probes in [1usize, 2, 4, 8, 16, 32] {
        let mut cfg = base;
        cfg.probes_per_table = probes;
        let row = measure_radius(
            w.data.clone(),
            &w.queries,
            family,
            Hamming,
            r,
            k,
            cost,
            PaperDataset::Mnist,
            &cfg,
        );
        table.row(vec![
            probes.to_string(),
            format!("{:.4}", row.hybrid_secs),
            format!("{:.4}", row.lsh_secs),
            format!("{:.4}", row.hybrid_recall),
            format!("{:.4}", row.lsh_recall),
            format!("{:.1}", row.ls_call_frac * 100.0),
        ]);
        eprintln!("[ablate_multiprobe] T = {probes} done");
    }
    table.print();
    println!("expected: recall rises with probes; hybrid bounds the cost as probing volume grows");
}
