//! Regenerates **Table 1**: relative cost and error of the per-bucket
//! HyperLogLogs.
//!
//! Paper protocol (§4.1): m = 128, L = 50, δ = 10%, averaged "over 4
//! datasets for a small range of radii where LSH-based search
//! significantly outperforms linear search". We use the first half of
//! each data set's Figure 2 radius sweep (the LSH-friendly end) and
//! report, per data set:
//!
//! * `% Cost`  — share of hybrid query time spent merging HLLs and
//!   estimating candSize;
//! * `% Error` — relative error of the candSize estimate (± std dev).
//!
//! ```text
//! cargo run --release -p hlsh-bench --bin table1 [--scale F|--full]
//! ```

use hlsh_bench::experiment::{run_dataset, ExperimentConfig};
use hlsh_bench::tablefmt::Table;
use hlsh_bench::CommonArgs;
use hlsh_vec::stats::Welford;

fn main() {
    let args = CommonArgs::from_env();
    let mut table = Table::new(
        "Table 1: relative cost and error of HLLs",
        &["Dataset", "% Cost", "% Error", "Error std"],
    );
    for dataset in args.datasets() {
        let cfg = ExperimentConfig::from_args(&args, dataset);
        let rows = run_dataset(dataset, &cfg);
        // "Small range of radii where LSH significantly outperforms
        // linear": keep the radii whose LSH time beats linear, falling
        // back to the smallest half of the sweep.
        let lsh_friendly: Vec<_> = rows.iter().filter(|r| r.lsh_secs < r.linear_secs).collect();
        let chosen: Vec<_> = if lsh_friendly.is_empty() {
            rows.iter().take((rows.len() / 2).max(1)).collect()
        } else {
            lsh_friendly
        };
        let mut cost = Welford::new();
        let mut err = Welford::new();
        let mut err_std = Welford::new();
        for row in chosen {
            cost.push(row.hll_cost_frac);
            err.push(row.hll_err_mean);
            err_std.push(row.hll_err_std);
        }
        table.row(vec![
            dataset.name().to_string(),
            format!("{:.2}%", cost.mean() * 100.0),
            format!("{:.2}%", err.mean() * 100.0),
            format!("{:.2}%", err_std.mean() * 100.0),
        ]);
        eprintln!("[table1] {} done (n = {})", dataset.name(), cfg.n);
    }
    table.print();
    println!(
        "paper reference — %Cost: Webspam 1.31, CoverType 0.12, Corel 3.18, MNIST 17.54; \
         %Error: 5.99, 5.86, 6.74, 6.80 (std ≈ 5%)"
    );
}
