//! Ablation: the paper's `k = ⌈log(1 − δ^{1/L})/log p₁⌉` rule versus
//! the guarantee-preserving floor variant.
//!
//! The ceiling makes each g-function one atom longer whenever the bound
//! is fractional, which *lowers* per-table collision probability below
//! the level needed for the `1 − δ` guarantee — a subtle off-by-one in
//! the E2LSH folk setting. The floor variant keeps the guarantee at the
//! price of larger buckets. This bin measures both on MNIST.
//!
//! ```text
//! cargo run --release -p hlsh-bench --bin ablate_k [--scale F]
//! ```

use hlsh_bench::experiment::{measure_radius, resolve_cost, ExperimentConfig};
use hlsh_bench::tablefmt::Table;
use hlsh_bench::CommonArgs;
use hlsh_datagen::BinaryWorkload;
use hlsh_families::{k_paper, k_safe, recall_lower_bound, BitSampling, LshFamily, PaperDataset};
use hlsh_vec::Hamming;

fn main() {
    let args = CommonArgs::from_env();
    let base = ExperimentConfig::from_args(&args, PaperDataset::Mnist);
    let w = BinaryWorkload::paper(base.n, base.queries, base.seed);
    let family = BitSampling::new(64);
    let cost = resolve_cost(&base, &w.data, &Hamming);

    let mut table = Table::new(
        "Ablation: k rule (MNIST, δ = 0.1, L = 50)",
        &["radius", "rule", "k", "predicted recall ≥", "measured LSH recall", "LSH s"],
    );
    for &r in &[12.0, 14.0, 17.0] {
        let p1 = family.collision_prob(r);
        for (label, k) in [
            ("paper ⌈·⌉", k_paper(base.delta, base.l, p1).min(64)),
            ("safe ⌊·⌋", k_safe(base.delta, base.l, p1).min(64)),
        ] {
            let row = measure_radius(
                w.data.clone(),
                &w.queries,
                family,
                Hamming,
                r,
                k,
                cost,
                PaperDataset::Mnist,
                &base,
            );
            table.row(vec![
                format!("{r}"),
                label.to_string(),
                k.to_string(),
                format!("{:.4}", recall_lower_bound(p1, k, base.l)),
                format!("{:.4}", row.lsh_recall),
                format!("{:.4}", row.lsh_secs),
            ]);
        }
        eprintln!("[ablate_k] r = {r} done");
    }
    table.print();
    println!(
        "expected: floor k meets the 0.90 bound for points exactly at r; ceiling k may dip \
         below it (points closer than r keep measured recall higher than the worst case)"
    );
}
