//! Ablation: the lazy small-bucket sketch trick (§3.2).
//!
//! "For small buckets (e.g. #points < m), we might not need HLL, since
//! we can update the merged HLL on demand at the query time. This trick
//! can save the space overhead and improve the running time."
//!
//! Eager mode materialises a 128-byte sketch in *every* bucket; lazy
//! mode only in buckets with ≥ m members. This bin reports the sketch
//! memory, the sketched-bucket share and the hybrid query time of both
//! modes on the Webspam workload.
//!
//! ```text
//! cargo run --release -p hlsh-bench --bin ablate_lazy [--scale F]
//! ```

use hlsh_bench::experiment::{measure_radius, resolve_cost, ExperimentConfig};
use hlsh_bench::tablefmt::Table;
use hlsh_bench::CommonArgs;
use hlsh_core::IndexBuilder;
use hlsh_datagen::DenseWorkload;
use hlsh_families::{k_paper, LshFamily, PaperDataset, SimHash};
use hlsh_vec::UnitCosine;

fn main() {
    let args = CommonArgs::from_env();
    let base = ExperimentConfig::from_args(&args, PaperDataset::Webspam);
    let w = DenseWorkload::paper(PaperDataset::Webspam, base.n, base.queries, base.seed);
    let r = 0.07;
    let family = SimHash::new(w.data.dim());
    let k = k_paper(base.delta, base.l, family.collision_prob(r)).min(64);
    let m = 1usize << base.hll_precision;
    let cost = resolve_cost(&base, &w.data, &UnitCosine);

    let mut table = Table::new(
        "Ablation: lazy vs eager per-bucket sketches (Webspam, r = 0.07)",
        &["mode", "buckets", "sketched", "sketch KiB", "hybrid s", "candSize err %"],
    );
    for (label, lazy) in [("lazy (paper)", true), ("eager", false)] {
        // Build once for memory statistics...
        let index = IndexBuilder::new(family, UnitCosine)
            .tables(base.l)
            .hash_len(k)
            .hll_precision(base.hll_precision)
            .lazy_threshold(if lazy { m } else { 1 })
            .seed(base.seed)
            .cost_model(cost)
            .build(w.data.clone());
        let stats = index.stats();
        drop(index);
        // ...and measure timing/accuracy through the shared runner.
        let mut cfg = base;
        cfg.lazy = lazy;
        let row = measure_radius(
            w.data.clone(),
            &w.queries,
            family,
            UnitCosine,
            r,
            k,
            cost,
            PaperDataset::Webspam,
            &cfg,
        );
        table.row(vec![
            label.to_string(),
            stats.buckets.to_string(),
            format!("{} ({:.1}%)", stats.sketched_buckets, stats.sketched_fraction() * 100.0),
            format!("{:.1}", stats.sketch_bytes as f64 / 1024.0),
            format!("{:.4}", row.hybrid_secs),
            format!("{:.2}", row.hll_err_mean * 100.0),
        ]);
        eprintln!("[ablate_lazy] {label} done");
    }
    table.print();
    println!("expected: identical error (the merge is mathematically identical), far less sketch memory lazily");
}
