//! Ablation: sensitivity of the hybrid decision to the `β/α` ratio.
//!
//! §4.2 calibrates β/α per data set (10 for Webspam) and the decision
//! quality depends on it: too small → hybrid scans too eagerly; too
//! large → it degenerates to classic LSH. This sweep shows how far the
//! ratio can drift before hybrid loses to the better of its two arms.
//!
//! ```text
//! cargo run --release -p hlsh-bench --bin ablate_ratio [--scale F]
//! ```

use hlsh_bench::experiment::{measure_radius, ExperimentConfig};
use hlsh_bench::tablefmt::Table;
use hlsh_bench::CommonArgs;
use hlsh_core::CostModel;
use hlsh_datagen::DenseWorkload;
use hlsh_families::{k_paper, LshFamily, PaperDataset, SimHash};
use hlsh_vec::UnitCosine;

fn main() {
    let args = CommonArgs::from_env();
    let base = ExperimentConfig::from_args(&args, PaperDataset::Webspam);
    let w = DenseWorkload::paper(PaperDataset::Webspam, base.n, base.queries, base.seed);
    let r = 0.08;
    let family = SimHash::new(w.data.dim());
    let k = k_paper(base.delta, base.l, family.collision_prob(r)).min(64);

    let mut table = Table::new(
        "Ablation: β/α ratio sensitivity (Webspam, r = 0.08; paper ratio = 10)",
        &["β/α", "hybrid s", "LSH s", "Linear s", "LS calls %", "hybrid ≤ best arm?"],
    );
    for ratio in [0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0] {
        let mut cfg = base;
        cfg.ratio_override = Some(ratio);
        let row = measure_radius(
            w.data.clone(),
            &w.queries,
            family,
            UnitCosine,
            r,
            k,
            CostModel::from_ratio(ratio),
            PaperDataset::Webspam,
            &cfg,
        );
        let best_arm = row.lsh_secs.min(row.linear_secs);
        table.row(vec![
            format!("{ratio}"),
            format!("{:.4}", row.hybrid_secs),
            format!("{:.4}", row.lsh_secs),
            format!("{:.4}", row.linear_secs),
            format!("{:.1}", row.ls_call_frac * 100.0),
            // 15% tolerance for the per-query decision overhead.
            if row.hybrid_secs <= best_arm * 1.15 { "yes" } else { "no" }.to_string(),
        ]);
        eprintln!("[ablate_ratio] β/α = {ratio} done");
    }
    table.print();
    println!("expected: LS-call share falls as the ratio grows; hybrid stays near the best arm for a wide ratio band");
}
