//! Index-construction throughput: points/s for the per-point
//! Algorithm 1 baseline vs the blocked build pipeline vs sharded
//! parallel construction, on the mixture workload.
//!
//! ```text
//! cargo run --release -p hlsh-bench --bin build_throughput -- \
//!     [--n N] [--dim N] [--tables N] [--k N] [--block N] \
//!     [--shards N] [--runs N] [--seed N] [--json PATH] [--sweep-shards "1,2,4"]
//! ```
//!
//! Before timing anything the bin asserts the blocked pipeline's
//! byte-identity contract: the blocked build (and the direct-frozen
//! build) must produce exactly the same frozen stores as the per-point
//! baseline on the fixed seed — the same gate CI runs via
//! `tests/build_parity.rs`. Reported numbers are **medians** over
//! `--runs` builds; `--json` writes a `BENCH_build.json`-style record.

use std::time::Instant;

use hlsh_bench::experiment::{shard_sweep, ShardSweepRow};
use hlsh_core::{CostModel, IndexBuilder, ShardAssignment, ShardedIndex};
use hlsh_datagen::benchmark_mixture;
use hlsh_families::PStableL2;
use hlsh_vec::L2;

struct Args {
    n: usize,
    dim: usize,
    tables: usize,
    k: usize,
    block: usize,
    shards: usize,
    runs: usize,
    seed: u64,
    json: Option<String>,
    sweep_shards: Vec<usize>,
}

fn parse_args() -> Args {
    let mut out = Args {
        n: 20_000,
        dim: 256,
        tables: 20,
        k: 8,
        block: 256,
        shards: 4,
        runs: 5,
        seed: 29,
        json: None,
        sweep_shards: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab_str =
            |name: &str| -> String { it.next().unwrap_or_else(|| panic!("{name} needs a value")) };
        let mut grab = |name: &str| -> usize {
            grab_str(name).parse().unwrap_or_else(|_| panic!("{name} needs a positive integer"))
        };
        match arg.as_str() {
            "--n" => out.n = grab("--n"),
            "--dim" => out.dim = grab("--dim").max(1),
            "--tables" => out.tables = grab("--tables").max(1),
            "--k" => out.k = grab("--k").max(1),
            "--block" => out.block = grab("--block").max(1),
            "--shards" => out.shards = grab("--shards").max(1),
            "--runs" => out.runs = grab("--runs").max(1),
            "--seed" => out.seed = grab("--seed") as u64,
            "--json" => out.json = Some(grab_str("--json")),
            "--sweep-shards" => {
                out.sweep_shards = grab_str("--sweep-shards")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sweep-shards needs integers"))
                    .collect()
            }
            other => {
                eprintln!(
                    "unknown flag {other:?}\nusage: build [--n N] [--dim N] [--tables N] [--k N] [--block N] [--shards N] [--runs N] [--seed N] [--json PATH] [--sweep-shards \"1,2,4\"]"
                );
                std::process::exit(2);
            }
        }
    }
    out
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let args = parse_args();
    let base_r = 1.5;
    let (data, _) = benchmark_mixture(args.dim, args.n, base_r, args.seed);
    let builder = || {
        IndexBuilder::new(PStableL2::new(args.dim, 2.0 * base_r), L2)
            .tables(args.tables)
            .hash_len(args.k)
            .seed(args.seed)
            .cost_model(CostModel::from_ratio(6.0)) // fixed: calibration out of the timed path
    };
    println!(
        "mixture n={} dim={} | L={} k={} block={} seed={}\n",
        args.n, args.dim, args.tables, args.k, args.block, args.seed
    );

    // Byte-identity gate before any timing: blocked (map and direct
    // frozen) must equal the per-point baseline, table by table.
    {
        let per_point = builder().per_point().sequential().build(data.clone()).freeze();
        let blocked_map =
            builder().block_size(args.block).sequential().build(data.clone()).freeze();
        let blocked_frozen =
            builder().block_size(args.block).sequential().build_frozen(data.clone());
        for j in 0..args.tables {
            assert_eq!(
                per_point.raw_tables()[j].store(),
                blocked_map.raw_tables()[j].store(),
                "blocked MapStore build diverged from per-point at table {j}"
            );
            assert_eq!(
                per_point.raw_tables()[j].store(),
                blocked_frozen.raw_tables()[j].store(),
                "direct-frozen build diverged from per-point at table {j}"
            );
        }
        println!(
            "verified: blocked and direct-frozen builds byte-identical to per-point across {} tables",
            args.tables
        );
    }

    let mut results: Vec<(String, f64, f64)> = Vec::new(); // (id, secs, points/s)
    let mut measure = |label: String, f: &dyn Fn() -> usize| {
        let secs = median(
            (0..args.runs)
                .map(|_| {
                    let t0 = Instant::now();
                    std::hint::black_box(f());
                    t0.elapsed().as_secs_f64()
                })
                .collect(),
        );
        let pps = args.n as f64 / secs;
        println!("{label:<48} {pps:>12.0} points/s   ({secs:.3} s median of {})", args.runs);
        results.push((label, secs, pps));
    };

    measure("per-point build (MapStore, 1 thread)".into(), &|| {
        builder().per_point().sequential().build(data.clone()).len()
    });
    measure("per-point build + freeze (1 thread)".into(), &|| {
        builder().per_point().sequential().build(data.clone()).freeze().len()
    });
    measure("blocked build (MapStore, 1 thread)".into(), &|| {
        builder().block_size(args.block).sequential().build(data.clone()).len()
    });
    measure("blocked direct-frozen build (1 thread)".into(), &|| {
        builder().block_size(args.block).sequential().build_frozen(data.clone()).len()
    });
    measure(format!("sharded parallel direct-frozen build ({} shards)", args.shards), &|| {
        ShardedIndex::build_frozen(
            data.clone(),
            ShardAssignment::new(args.seed, args.shards),
            builder().block_size(args.block),
        )
        .len()
    });

    // Like for like: hashmap-to-hashmap, and frozen-to-frozen (the
    // serving configuration, where the blocked pipeline also skips the
    // intermediate hashmap).
    let speedup = results[2].2 / results[0].2;
    let frozen_speedup = results[3].2 / results[1].2;
    println!(
        "\nblocked vs per-point: {speedup:.2}x points/s (MapStore); {frozen_speedup:.2}x (frozen pipeline vs per-point + freeze)"
    );

    let sweep: Vec<ShardSweepRow> = if args.sweep_shards.is_empty() {
        Vec::new()
    } else {
        println!("\nshard-count sweep (build + batch query, frozen):");
        let rows = shard_sweep(
            args.dim,
            args.n,
            256.min(args.n / 4),
            base_r,
            args.seed,
            &args.sweep_shards,
            args.runs,
        );
        for row in &rows {
            println!(
                "  shards={:<3} build {:>10.0} points/s   batch {:>9.0} queries/s",
                row.shards, row.build_points_per_sec, row.batch_queries_per_sec
            );
        }
        rows
    };

    if let Some(path) = &args.json {
        let entries: Vec<String> = results
            .iter()
            .map(|(id, secs, pps)| {
                format!(
                    "    {{ \"id\": \"{id}\", \"secs\": {secs:.4}, \"points_per_sec\": {pps:.1} }}"
                )
            })
            .collect();
        let sweep_entries: Vec<String> = sweep
            .iter()
            .map(|row| {
                format!(
                    "    {{ \"shards\": {}, \"build_points_per_sec\": {:.1}, \"batch_queries_per_sec\": {:.1} }}",
                    row.shards, row.build_points_per_sec, row.batch_queries_per_sec
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"build\",\n  \"command\": \"cargo run --release -p hlsh-bench --bin build_throughput\",\n  \"params\": {{ \"n\": {}, \"dim\": {}, \"tables\": {}, \"k\": {}, \"block\": {}, \"shards\": {}, \"runs\": {}, \"seed\": {} }},\n  \"blocked_vs_per_point_speedup\": {speedup:.3},\n  \"frozen_pipeline_vs_per_point_freeze_speedup\": {frozen_speedup:.3},\n  \"results\": [\n{}\n  ],\n  \"shard_sweep\": [\n{}\n  ]\n}}\n",
            args.n,
            args.dim,
            args.tables,
            args.k,
            args.block,
            args.shards,
            args.runs,
            args.seed,
            entries.join(",\n"),
            sweep_entries.join(",\n"),
        );
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path}");
    }
}
