//! Parameter auto-tuning demo: the E2LSH-style `(k, L)` optimisation
//! behind the paper's footnote-1 setting, applied to each data set's
//! Figure 2 radius band.
//!
//! For every data set it prints, per radius: the paper's fixed-L rule
//! (`L = 50`, `k` from the δ-formula) next to the cost-optimal pair
//! from [`hlsh_families::optimize_k_l`] with `p₂` evaluated at `2r`
//! (the usual approximation-factor c = 2).
//!
//! ```text
//! cargo run --release -p hlsh-bench --bin tune
//! ```

use hlsh_bench::tablefmt::{fmt_radius, Table};
use hlsh_bench::CommonArgs;
use hlsh_families::{
    k_paper, optimize_k_l, recall_lower_bound, BitSampling, LshFamily, PaperDataset, SimHash,
};

fn main() {
    let args = CommonArgs::from_env();
    let mut table = Table::new(
        "Auto-tuned (k, L) vs the paper's fixed-L rule (δ = 0.1, c = 2)",
        &["dataset", "r", "paper k@L=50", "tuned k", "tuned L", "tuned recall ≥"],
    );
    for dataset in args.datasets() {
        // The sign-bit families have an analytic p(r); the p-stable
        // experiments fix k and scale w instead, so tuning applies to
        // the Hamming/cosine data sets.
        let curve: Option<Box<dyn Fn(f64) -> f64>> = match dataset {
            PaperDataset::Mnist => {
                let f = BitSampling::new(64);
                Some(Box::new(move |r| f.collision_prob(r)))
            }
            PaperDataset::Webspam => {
                let f = SimHash::new(dataset.paper_dim());
                Some(Box::new(move |r| f.collision_prob(r)))
            }
            _ => None,
        };
        let Some(p) = curve else { continue };
        let n = args.n_for(dataset);
        for r in dataset.figure2_radii() {
            let p1 = p(r);
            let p2 = p(2.0 * r).max(1e-6).min(p1);
            let paper_k = k_paper(0.1, 50, p1).min(64);
            let tuned = optimize_k_l(p1, p2, n, 0.1, 48, 2.0);
            table.row(vec![
                dataset.name().to_string(),
                fmt_radius(r),
                paper_k.to_string(),
                tuned.k.to_string(),
                tuned.l.to_string(),
                format!("{:.3}", recall_lower_bound(p1, tuned.k, tuned.l)),
            ]);
        }
    }
    table.print();
    println!("note: the tuned L is the minimum meeting 1 − δ at the tuned k; the paper instead fixes L = 50 and derives k");
}
