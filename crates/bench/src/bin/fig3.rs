//! Regenerates **Figure 3** (Webspam): left panel — average, maximum
//! and minimum exact output size per radius; right panel — percentage
//! of hybrid queries that fell back to linear search.
//!
//! ```text
//! cargo run --release -p hlsh-bench --bin fig3 [--scale F|--full]
//! ```
//!
//! Expected shape (paper §4.2): max output approaches n/2 while min
//! stays near zero ("hard" and "easy" queries coexist), and the
//! linear-search share climbs from ≈10% at r = 0.05 toward ≈50% at
//! r = 0.10.

use hlsh_bench::experiment::{run_dataset, ExperimentConfig};
use hlsh_bench::tablefmt::Table;
use hlsh_bench::CommonArgs;
use hlsh_families::PaperDataset;

fn main() {
    let mut args = CommonArgs::from_env();
    args.dataset = Some(PaperDataset::Webspam);
    let cfg = ExperimentConfig::from_args(&args, PaperDataset::Webspam);
    let rows = run_dataset(PaperDataset::Webspam, &cfg);
    let n = cfg.n - cfg.queries;

    let mut left = Table::new(
        &format!("Figure 3 (left): Webspam output size, n = {n}"),
        &["radius", "min", "avg", "max", "max/n"],
    );
    for row in &rows {
        left.row(vec![
            hlsh_bench::tablefmt::fmt_radius(row.radius),
            row.out_min.to_string(),
            format!("{:.1}", row.out_avg),
            row.out_max.to_string(),
            format!("{:.2}", row.out_max as f64 / n as f64),
        ]);
    }
    left.print();

    let mut right = Table::new(
        "Figure 3 (right): percentage of linear-search calls in hybrid search",
        &["radius", "% LS calls"],
    );
    for row in &rows {
        right.row(vec![
            hlsh_bench::tablefmt::fmt_radius(row.radius),
            format!("{:.1}%", row.ls_call_frac * 100.0),
        ]);
    }
    right.print();
    println!(
        "paper reference — max output > n/2; LS calls ≈ 10% at r=0.05 rising to ≈ 50% at r=0.10"
    );
}
