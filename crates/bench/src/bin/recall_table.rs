//! Regenerates the recall comparison §4.2 mentions but does not print
//! ("hybrid search gives higher recall ratio than LSH-based search
//! since it uses linear search for 'hard' queries. Due to the limit of
//! space, we do not report it here.").
//!
//! ```text
//! cargo run --release -p hlsh-bench --bin recall_table [--dataset ...]
//! ```

use hlsh_bench::experiment::{run_dataset, ExperimentConfig};
use hlsh_bench::tablefmt::Table;
use hlsh_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    let mut table = Table::new(
        "Recall of each strategy (target ≥ 0.90 = 1 − δ; Linear is exact by construction)",
        &["Dataset", "radius", "Hybrid", "LSH", "Linear"],
    );
    for dataset in args.datasets() {
        let cfg = ExperimentConfig::from_args(&args, dataset);
        for row in run_dataset(dataset, &cfg) {
            table.row(vec![
                dataset.name().to_string(),
                hlsh_bench::tablefmt::fmt_radius(row.radius),
                format!("{:.4}", row.hybrid_recall),
                format!("{:.4}", row.lsh_recall),
                "1.0000".to_string(),
            ]);
        }
        eprintln!("[recall] {} done", dataset.name());
    }
    table.print();
}
