//! Batch-query throughput on the mixture workload: sequential
//! single-query loop vs reused [`QueryEngine`] vs the sharded
//! `query_batch` API, on both storage backends.
//!
//! ```text
//! cargo run --release -p hlsh-bench --bin throughput -- [--n N] [--queries N] [--runs N] [--seed N] [--threads N]
//! ```
//!
//! Verifies byte-identical result ids across every path before
//! printing queries/second, so a speedup can never come from a wrong
//! answer.

use std::time::Instant;

use hlsh_core::{MixturePreset, QueryEngine, Strategy, VerifyMode};
use hlsh_datagen::benchmark_mixture;

struct Args {
    n: usize,
    queries: usize,
    runs: usize,
    seed: u64,
    threads: usize,
}

fn parse_args() -> Args {
    let mut out = Args {
        n: 20_000,
        queries: 256,
        runs: 5,
        seed: 23,
        threads: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a positive integer"))
        };
        match arg.as_str() {
            "--n" => out.n = grab("--n"),
            "--queries" => out.queries = grab("--queries"),
            "--runs" => out.runs = grab("--runs").max(1),
            "--seed" => out.seed = grab("--seed") as u64,
            "--threads" => out.threads = grab("--threads").max(1),
            other => {
                eprintln!(
                    "unknown flag {other:?}\nusage: throughput [--n N] [--queries N] [--runs N] [--seed N] [--threads N]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(out.queries < out.n, "--queries must be smaller than --n");
    out
}

fn main() {
    let args = parse_args();
    // The shared serving preset: identical builder parameters to the
    // `serve` binary, so socket-path numbers stay comparable.
    let preset = MixturePreset { n: args.n, seed: args.seed, ..MixturePreset::default() };
    let (dim, r) = (preset.dim, preset.radius);

    let (mut data, _) = benchmark_mixture(dim, args.n, r, args.seed);
    let q_rows: Vec<usize> = (0..args.queries).map(|i| i * (args.n / args.queries)).collect();
    let queries_ds = data.split_off_rows(&q_rows);
    let queries: Vec<Vec<f32>> =
        (0..queries_ds.len()).map(|i| queries_ds.row(i).to_vec()).collect();

    let index = preset.rnnr_builder().build(data);
    let frozen = {
        let (mut data2, _) = benchmark_mixture(dim, args.n, r, args.seed);
        data2.split_off_rows(&q_rows);
        preset.rnnr_builder().build_frozen(data2)
    };

    // Correctness gate: every path must report identical ids.
    let reference: Vec<Vec<u32>> = queries.iter().map(|q| index.query(q, r).ids).collect();
    let engine_ids: Vec<Vec<u32>> = {
        let mut engine = QueryEngine::new();
        queries.iter().map(|q| engine.query(&frozen, q, r).ids).collect()
    };
    let batch_ids: Vec<Vec<u32>> = frozen
        .query_batch_with_strategy(&queries, r, Strategy::Hybrid, Some(args.threads))
        .into_iter()
        .map(|o| o.ids)
        .collect();
    let scalar_ids: Vec<Vec<u32>> = {
        let mut engine = QueryEngine::with_verify_mode(VerifyMode::Scalar);
        queries.iter().map(|q| engine.query(&frozen, q, r).ids).collect()
    };
    assert_eq!(reference, engine_ids, "engine path diverged from sequential");
    assert_eq!(reference, batch_ids, "batch path diverged from sequential");
    assert_eq!(reference, scalar_ids, "kernel verification diverged from scalar");
    println!(
        "verified: {} queries, byte-identical ids across sequential / engine / batch / scalar-verify paths\n",
        queries.len()
    );

    let nq = queries.len() as f64;
    let measure = |label: &str, mut f: Box<dyn FnMut() -> usize + '_>| {
        let mut best = f64::INFINITY;
        for _ in 0..args.runs {
            let t0 = Instant::now();
            let total = f();
            let secs = t0.elapsed().as_secs_f64();
            std::hint::black_box(total);
            best = best.min(secs);
        }
        println!("{label:<44} {:>12.0} queries/s   ({best:.4} s best of {})", nq / best, args.runs);
        nq / best
    };

    let seq = measure(
        "sequential query() loop, hashmap store",
        Box::new(|| queries.iter().map(|q| index.query(q, r).ids.len()).sum()),
    );
    measure(
        "sequential query() loop, frozen store",
        Box::new(|| queries.iter().map(|q| frozen.query(q, r).ids.len()).sum()),
    );
    // S3 verification mode: the batched one-to-many kernels (default)
    // vs the per-candidate scalar loop, on the same engine/store.
    let scalar_verify = measure(
        "QueryEngine reuse, frozen store, verify=scalar",
        Box::new(|| {
            let mut engine = QueryEngine::with_verify_mode(VerifyMode::Scalar);
            queries.iter().map(|q| engine.query(&frozen, q, r).ids.len()).sum()
        }),
    );
    let kernel_verify = measure(
        "QueryEngine reuse, frozen store, verify=kernel",
        Box::new(|| {
            let mut engine = QueryEngine::with_verify_mode(VerifyMode::Kernel);
            queries.iter().map(|q| engine.query(&frozen, q, r).ids.len()).sum()
        }),
    );
    println!("  -> kernel vs scalar verification (β path): {:.2}x", kernel_verify / scalar_verify);
    for threads in [1, 2, 4, args.threads] {
        let label = format!("query_batch, frozen store, {threads} thread(s)");
        let tput = measure(
            &label,
            Box::new(|| {
                frozen
                    .query_batch_with_strategy(&queries, r, Strategy::Hybrid, Some(threads))
                    .iter()
                    .map(|o| o.ids.len())
                    .sum()
            }),
        );
        if threads == 4 {
            println!("  -> 4-thread batch vs sequential hashmap loop: {:.2}x", tput / seq);
        }
    }
}
