//! Snapshot cold-start benchmark: full rebuild vs save → load, across
//! every load mode, plus the v2 format's compression win over v1.
//!
//! ```text
//! cargo run --release -p hlsh-bench --bin snapshot -- \
//!     [--n N] [--dim N] [--queries N] [--shards N] [--levels N] \
//!     [--seed N] [--runs N] [--json PATH]
//! ```
//!
//! Builds the standard [`MixturePreset`] index (default n=20k, d=256 —
//! the serving-scale configuration), saves it with both the retained v1
//! writer and the v2 writer, then cold-starts fresh child processes
//! that load the v2 snapshot and answer a first query batch. Child
//! processes give honest numbers: load time, time to the first answered
//! batch, and resident set (`VmRSS`) are measured in a process that
//! never built anything. Probes cover all four load modes — `read`,
//! `mmap`, `mmap-verify` and the planner-driven `auto` — so the
//! planner's pick can be compared against every hand-picked mode. The
//! headline numbers — rebuild time over snapshot cold-start, v2 bytes
//! over v1 bytes, bytes per indexed point, the five largest sections —
//! land in `BENCH_snapshot.json` for CI to track.
//!
//! Each probe also returns a checksum of its first batch's result ids,
//! which must equal the parent's in-memory answer: a load that is fast
//! but wrong fails the run.

use std::io::Read as _;
use std::time::Instant;

use hlsh_core::snapshot::save_snapshot_v1;
use hlsh_core::{
    load_snapshot, read_layout, save_snapshot, LoadMode, MixturePreset, ShardedIndex,
    StorageProfile,
};
use hlsh_datagen::benchmark_mixture;
use hlsh_families::PStableL2;
use hlsh_vec::L2;

struct Args {
    preset: MixturePreset,
    queries: usize,
    runs: usize,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        // Serving scale: d=256 stresses the data section, which
        // dominates the file and the rebuild's hashing cost.
        preset: MixturePreset { n: 20_000, dim: 256, levels: 2, ..MixturePreset::default() },
        queries: 64,
        runs: 3,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab_str =
            |name: &str| -> String { it.next().unwrap_or_else(|| panic!("{name} needs a value")) };
        let mut grab = |name: &str| -> usize {
            grab_str(name).parse().unwrap_or_else(|_| panic!("{name} needs a positive integer"))
        };
        match arg.as_str() {
            "--n" => out.preset.n = grab("--n"),
            "--dim" => out.preset.dim = grab("--dim").max(1),
            "--queries" => out.queries = grab("--queries").max(1),
            "--shards" => out.preset.shards = grab("--shards").max(1),
            "--levels" => out.preset.levels = grab("--levels"),
            "--seed" => out.preset.seed = grab("--seed") as u64,
            "--runs" => out.runs = grab("--runs").max(1),
            "--json" => out.json = Some(grab_str("--json")),
            other => {
                eprintln!(
                    "unknown flag {other:?}\nusage: snapshot [--n N] [--dim N] [--queries N] [--shards N] [--levels N] [--seed N] [--runs N] [--json PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    out
}

/// The load modes a cold-starting server can pick from, with the CLI
/// spelling used for the probe child and the JSON keys.
const MODES: [(&str, LoadMode); 4] = [
    ("read", LoadMode::Read),
    ("mmap", LoadMode::Mmap),
    ("mmap-verify", LoadMode::MmapVerify),
    ("auto", LoadMode::Auto),
];

/// Up to `count` probe queries drawn from shard 0 of a loaded or built
/// index — no data generation in the child, identical rows both sides.
fn probe_queries(
    rnnr: &ShardedIndex<hlsh_vec::DenseDataset, PStableL2, L2, hlsh_core::FrozenStore>,
    count: usize,
) -> Vec<Vec<f32>> {
    let shard0 = &rnnr.shards()[0];
    let data = shard0.data();
    let n = data.len();
    let step = (n / count).max(1);
    (0..n).step_by(step).take(count).map(|i| data.row(i).to_vec()).collect()
}

fn ids_checksum(outputs: &[hlsh_core::QueryOutput]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for o in outputs {
        for &id in &o.ids {
            h = (h ^ id as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h = h.wrapping_add(o.ids.len() as u64);
    }
    h
}

fn vm_rss_kb() -> u64 {
    let mut status = String::new();
    if std::fs::File::open("/proc/self/status")
        .and_then(|mut f| f.read_to_string(&mut status))
        .is_err()
    {
        return 0;
    }
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Child-process entry: load the snapshot, answer one query batch,
/// report timings + residency as one parseable line, exit.
fn run_probe(mut rest: impl Iterator<Item = String>) -> ! {
    let path = rest.next().expect("probe: snapshot path");
    let mode_str = rest.next().expect("probe: mode");
    let mode: LoadMode =
        mode_str.parse().unwrap_or_else(|e| panic!("probe: mode {mode_str:?}: {e}"));
    let radius: f64 = rest.next().expect("probe: radius").parse().expect("probe: radius float");
    let queries: usize = rest.next().expect("probe: queries").parse().expect("probe: queries int");

    let t0 = Instant::now();
    let loaded = load_snapshot::<PStableL2, L2>(path.as_ref(), mode)
        .unwrap_or_else(|e| panic!("probe: cannot load {path}: {e}"));
    let load_secs = t0.elapsed().as_secs_f64();

    let qs = probe_queries(&loaded.rnnr, queries);
    let t1 = Instant::now();
    let outputs = loaded.rnnr.query_batch(&qs, radius);
    let first_batch_secs = t1.elapsed().as_secs_f64();

    if let Some(plan) = &loaded.plan {
        eprintln!(
            "probe plan: {:?} backend, prefetch={} — {}",
            plan.backend, plan.prefetch, plan.reason
        );
    }
    println!(
        "PROBE mode={mode_str} load_secs={:.6} first_batch_secs={:.6} cold_start_secs={:.6} vm_rss_kb={} checksum={:#018x}",
        load_secs,
        first_batch_secs,
        load_secs + first_batch_secs,
        vm_rss_kb(),
        ids_checksum(&outputs),
    );
    std::process::exit(0);
}

#[derive(Clone, Copy, Debug, Default)]
struct ProbeResult {
    load_secs: f64,
    first_batch_secs: f64,
    cold_start_secs: f64,
    vm_rss_kb: u64,
    checksum: u64,
}

fn parse_probe(line: &str) -> ProbeResult {
    let mut out = ProbeResult::default();
    for field in line.split_whitespace() {
        if let Some((key, val)) = field.split_once('=') {
            match key {
                "load_secs" => out.load_secs = val.parse().expect("load_secs"),
                "first_batch_secs" => out.first_batch_secs = val.parse().expect("first_batch"),
                "cold_start_secs" => out.cold_start_secs = val.parse().expect("cold_start"),
                "vm_rss_kb" => out.vm_rss_kb = val.parse().expect("vm_rss_kb"),
                "checksum" => {
                    out.checksum =
                        u64::from_str_radix(val.trim_start_matches("0x"), 16).expect("checksum")
                }
                _ => {}
            }
        }
    }
    out
}

fn spawn_probe(path: &str, mode: &str, radius: f64, queries: usize) -> ProbeResult {
    let exe = std::env::current_exe().expect("current_exe");
    let output = std::process::Command::new(exe)
        .args(["--_probe", path, mode])
        .arg(format!("{radius}"))
        .arg(format!("{queries}"))
        .output()
        .expect("spawn probe");
    assert!(
        output.status.success(),
        "probe {mode} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout.lines().find(|l| l.starts_with("PROBE ")).expect("probe output line");
    parse_probe(line)
}

fn main() {
    let mut argv = std::env::args().skip(1);
    if argv.next().as_deref() == Some("--_probe") {
        run_probe(argv);
    }

    let args = parse_args();
    let preset = args.preset;

    eprintln!("generating mixture corpus n={} dim={} seed={}…", preset.n, preset.dim, preset.seed);
    let t = Instant::now();
    let (data, _) = benchmark_mixture(preset.dim, preset.n, preset.radius, preset.seed);
    let datagen_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let rnnr = preset.build_rnnr(data.clone());
    let topk = (preset.levels > 0).then(|| preset.build_topk(data));
    let build_secs = t.elapsed().as_secs_f64();

    // The number a restarting server actually pays without snapshots.
    let qs = probe_queries(&rnnr, args.queries);
    let t = Instant::now();
    let reference = rnnr.query_batch(&qs, preset.radius);
    let rebuild_first_batch_secs = t.elapsed().as_secs_f64();
    let rebuild_cold_start = datagen_secs + build_secs + rebuild_first_batch_secs;
    let reference_checksum = ids_checksum(&reference);

    let dir = std::env::temp_dir().join("hlsh-snapshot-bench");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("bench-{}.hlsh", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path").to_string();

    // v1 exists only to size the format win; probes run against v2.
    let v1_path = dir.join(format!("bench-{}-v1.hlsh", std::process::id()));
    let v1_stats = save_snapshot_v1(&v1_path, &rnnr, topk.as_ref()).expect("save v1 snapshot");
    std::fs::remove_file(&v1_path).ok();

    let t = Instant::now();
    let stats = save_snapshot(&path, &rnnr, topk.as_ref()).expect("save snapshot");
    let save_secs = t.elapsed().as_secs_f64();
    let v2_vs_v1 = stats.bytes as f64 / v1_stats.bytes as f64;
    let payload_ratio = stats.encoded_payload_bytes as f64 / stats.raw_payload_bytes.max(1) as f64;
    let bytes_per_point = stats.bytes as f64 / preset.n.max(1) as f64;
    println!(
        "built n={} dim={} shards={} levels={} in {build_secs:.2} s (+{datagen_secs:.2} s datagen); snapshot: {} bytes, {} sections, saved in {save_secs:.3} s",
        preset.n, preset.dim, preset.shards, preset.levels, stats.bytes, stats.sections,
    );
    println!(
        "format: v2 {} B vs v1 {} B ({:.1}% smaller); encodings raw={} varint={} delta={} ef={}; payload {} -> {} B ({:.1}% of raw); {:.1} B/point",
        stats.bytes,
        v1_stats.bytes,
        (1.0 - v2_vs_v1) * 100.0,
        stats.raw_sections,
        stats.varint_sections,
        stats.delta_sections,
        stats.ef_sections,
        stats.raw_payload_bytes,
        stats.encoded_payload_bytes,
        payload_ratio * 100.0,
        bytes_per_point,
    );

    let layout = read_layout(&path).expect("read layout");
    let mut by_size: Vec<_> = layout.sections.iter().collect();
    by_size.sort_by(|a, b| b.enc_len.cmp(&a.enc_len).then(a.label.cmp(&b.label)));
    let top_sections: Vec<_> = by_size.into_iter().take(5).collect();
    println!("largest sections:");
    for s in &top_sections {
        println!(
            "  {:<24} {:>12} B on disk  ({:>12} B decoded, {:?})",
            s.label, s.enc_len, s.raw_len, s.encoding
        );
    }

    // Fresh child process per run: cold allocator, honest RSS. The
    // first auto probe pays the storage probe and writes the profile
    // sidecar; later runs read it back, like a restarting server.
    let mut best: Vec<(&str, ProbeResult)> = Vec::new();
    for (name, _) in MODES {
        let mut runs: Vec<ProbeResult> = (0..args.runs)
            .map(|_| spawn_probe(&path_str, name, preset.radius, args.queries))
            .collect();
        for r in &runs {
            assert_eq!(
                r.checksum, reference_checksum,
                "{name} probe answered differently than the in-memory index"
            );
        }
        runs.sort_by(|a, b| a.cold_start_secs.total_cmp(&b.cold_start_secs));
        let b = runs[0];
        println!(
            "cold start ({name:>11}): load {:>8.1} ms + first batch {:>7.1} ms = {:>8.1} ms   rss {:>7} kB   ({} runs)",
            b.load_secs * 1e3,
            b.first_batch_secs * 1e3,
            b.cold_start_secs * 1e3,
            b.vm_rss_kb,
            args.runs,
        );
        best.push((name, b));
    }

    let best_fixed = best
        .iter()
        .filter(|(name, _)| *name != "auto")
        .map(|(_, r)| r.cold_start_secs)
        .fold(f64::INFINITY, f64::min);
    let auto = best.iter().find(|(name, _)| *name == "auto").expect("auto probed").1;
    println!(
        "rebuild cold start: {:.2} s ({datagen_secs:.2} datagen + {build_secs:.2} build + {:.3} first batch)",
        rebuild_cold_start, rebuild_first_batch_secs,
    );
    let speedups: Vec<String> = best
        .iter()
        .map(|(name, r)| format!("{name} {:.1}x", rebuild_cold_start / r.cold_start_secs))
        .collect();
    println!(
        "speedup vs rebuild: {}   (auto vs best fixed mode: {:+.1}%)",
        speedups.join(", "),
        (auto.cold_start_secs / best_fixed - 1.0) * 100.0,
    );

    if let Some(json_path) = &args.json {
        let probe_json = |r: &ProbeResult| {
            format!(
                "{{ \"load_secs\": {:.6}, \"first_batch_secs\": {:.6}, \"cold_start_secs\": {:.6}, \"vm_rss_kb\": {}, \"speedup_vs_rebuild\": {:.2} }}",
                r.load_secs,
                r.first_batch_secs,
                r.cold_start_secs,
                r.vm_rss_kb,
                rebuild_cold_start / r.cold_start_secs
            )
        };
        let modes_json: Vec<String> = best
            .iter()
            .map(|(name, r)| format!("    \"{}\": {}", name.replace('-', "_"), probe_json(r)))
            .collect();
        let sections_json: Vec<String> = top_sections
            .iter()
            .map(|s| {
                format!(
                    "    {{ \"label\": \"{}\", \"enc_len\": {}, \"raw_len\": {}, \"encoding\": \"{:?}\" }}",
                    s.label, s.enc_len, s.raw_len, s.encoding
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"snapshot\",\n  \"command\": \"cargo run --release -p hlsh-bench --bin snapshot\",\n  \"params\": {{ \"n\": {}, \"dim\": {}, \"shards\": {}, \"levels\": {}, \"queries\": {}, \"seed\": {}, \"runs\": {} }},\n  \"snapshot\": {{ \"bytes\": {}, \"v1_bytes\": {}, \"v2_vs_v1_ratio\": {v2_vs_v1:.4}, \"bytes_per_point\": {bytes_per_point:.1}, \"sections\": {}, \"raw_sections\": {}, \"varint_sections\": {}, \"delta_sections\": {}, \"ef_sections\": {}, \"raw_payload_bytes\": {}, \"encoded_payload_bytes\": {}, \"payload_ratio\": {payload_ratio:.4}, \"save_secs\": {save_secs:.4} }},\n  \"largest_sections\": [\n{}\n  ],\n  \"rebuild\": {{ \"datagen_secs\": {datagen_secs:.4}, \"build_secs\": {build_secs:.4}, \"first_batch_secs\": {rebuild_first_batch_secs:.6}, \"cold_start_secs\": {rebuild_cold_start:.4} }},\n  \"modes\": {{\n{}\n  }},\n  \"auto_vs_best_fixed\": {:.4}\n}}\n",
            preset.n,
            preset.dim,
            preset.shards,
            preset.levels,
            args.queries,
            preset.seed,
            args.runs,
            stats.bytes,
            v1_stats.bytes,
            stats.sections,
            stats.raw_sections,
            stats.varint_sections,
            stats.delta_sections,
            stats.ef_sections,
            stats.raw_payload_bytes,
            stats.encoded_payload_bytes,
            sections_json.join(",\n"),
            modes_json.join(",\n"),
            auto.cold_start_secs / best_fixed,
        );
        std::fs::write(json_path, json).unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
        println!("wrote {json_path}");
    }

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(StorageProfile::cache_path(&path)).ok();
}
