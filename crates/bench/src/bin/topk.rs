//! Top-k query quality and throughput on the mixture workload:
//! recall@k against exact ground truth, then queries/second for the
//! sequential [`TopKEngine`] loop vs the sharded `query_topk_batch`
//! API on the frozen backend.
//!
//! ```text
//! cargo run --release -p hlsh-bench --bin topk -- \
//!     [--n N] [--queries N] [--k N] [--levels N] [--runs N] \
//!     [--seed N] [--threads N] [--json PATH]
//! ```
//!
//! Verifies byte-identical neighbor lists between the batch and
//! sequential paths before timing anything, and exits non-zero if
//! recall@k falls below `--min-recall` (default 0: report-only; CI's
//! recall gate lives in `tests/topk_recall.rs`). `--json` writes a
//! `BENCH_kernels.json`-style timing record for workflow artifacts.

use std::time::Instant;

use hlsh_bench::experiment::recall_at_k;
use hlsh_core::{MixturePreset, Strategy, TopKEngine, TopKIndex, TopKOutput};
use hlsh_datagen::{benchmark_mixture, ground_truth_topk};
use hlsh_vec::L2;

struct Args {
    n: usize,
    queries: usize,
    k: usize,
    levels: usize,
    runs: usize,
    seed: u64,
    threads: usize,
    min_recall: f64,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        n: 20_000,
        queries: 256,
        k: 10,
        levels: 4,
        runs: 5,
        seed: 23,
        threads: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        min_recall: 0.0,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab_str =
            |name: &str| -> String { it.next().unwrap_or_else(|| panic!("{name} needs a value")) };
        let mut grab = |name: &str| -> usize {
            grab_str(name).parse().unwrap_or_else(|_| panic!("{name} needs a positive integer"))
        };
        match arg.as_str() {
            "--n" => out.n = grab("--n"),
            "--queries" => out.queries = grab("--queries"),
            "--k" => out.k = grab("--k").max(1),
            "--levels" => out.levels = grab("--levels").max(1),
            "--runs" => out.runs = grab("--runs").max(1),
            "--seed" => out.seed = grab("--seed") as u64,
            "--threads" => out.threads = grab("--threads").max(1),
            "--min-recall" => {
                out.min_recall = grab_str("--min-recall")
                    .parse()
                    .unwrap_or_else(|_| panic!("--min-recall needs a float"))
            }
            "--json" => out.json = Some(grab_str("--json")),
            other => {
                eprintln!(
                    "unknown flag {other:?}\nusage: topk [--n N] [--queries N] [--k N] [--levels N] [--runs N] [--seed N] [--threads N] [--min-recall F] [--json PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(out.queries < out.n, "--queries must be smaller than --n");
    out
}

fn main() {
    let args = parse_args();
    // The shared serving preset: identical builder parameters to the
    // `serve` binary, so socket-path numbers stay comparable.
    let preset = MixturePreset {
        n: args.n,
        seed: args.seed,
        levels: args.levels,
        ..MixturePreset::default()
    };
    let (dim, base_r) = (preset.dim, preset.radius);
    let schedule = preset.schedule();

    let (mut data, _) = benchmark_mixture(dim, args.n, base_r, args.seed);
    let q_rows: Vec<usize> = (0..args.queries).map(|i| i * (args.n / args.queries)).collect();
    let queries_ds = data.split_off_rows(&q_rows);
    let queries: Vec<Vec<f32>> =
        (0..queries_ds.len()).map(|i| queries_ds.row(i).to_vec()).collect();

    let t_build = Instant::now();
    let index = TopKIndex::build(data, schedule, |_, r| preset.level_builder(r)).freeze();
    let build_secs = t_build.elapsed().as_secs_f64();
    // One ladder indexes every point once per level, so points/s is
    // measured against n·levels insertions — the number CI tracks for
    // build regressions alongside the query-side timings.
    let build_points_per_sec = (index.len() * args.levels) as f64 / build_secs;
    println!(
        "built {} levels (radii {:?}) over n={} in {build_secs:.2} s ({build_points_per_sec:.0} points/s across levels)\n",
        args.levels,
        schedule.radii().collect::<Vec<_>>(),
        index.len()
    );

    // Correctness gate: batch must be byte-identical to the sequential
    // engine loop before any timing is trusted.
    let sequential: Vec<TopKOutput> = {
        let mut engine = TopKEngine::new();
        queries.iter().map(|q| engine.query_topk(&index, q, args.k)).collect()
    };
    let batch = index.query_topk_batch_with(&queries, args.k, Strategy::Hybrid, Some(args.threads));
    for (qi, (s, b)) in sequential.iter().zip(&batch).enumerate() {
        assert_eq!(s.neighbors, b.neighbors, "batch diverged from sequential at query {qi}");
    }
    println!(
        "verified: {} queries, byte-identical neighbors across sequential / batch paths",
        queries.len()
    );

    // Quality: recall@k against exact ground truth.
    let truth = ground_truth_topk(index.data(), &queries_ds, &L2, args.k);
    let recall = recall_at_k(&sequential, &truth);
    let nq = queries.len() as f64;
    let frac = |f: fn(&TopKOutput) -> bool| sequential.iter().filter(|o| f(o)).count() as f64 / nq;
    let executed_mean =
        sequential.iter().map(|o| o.report.levels_executed).sum::<usize>() as f64 / nq;
    let skipped_mean =
        sequential.iter().map(|o| o.report.levels_skipped).sum::<usize>() as f64 / nq;
    let early_frac = frac(|o| o.report.early_exit);
    let fallback_frac = frac(|o| o.report.exact_fallback);
    println!(
        "recall@{k}: {recall:.4}   levels executed {executed_mean:.2} / skipped {skipped_mean:.2} (of {total}), early-exit {early:.0}%, exact-fallback {fb:.0}%\n",
        k = args.k,
        total = args.levels,
        early = 100.0 * early_frac,
        fb = 100.0 * fallback_frac,
    );

    let mut timings: Vec<(String, f64)> = Vec::new();
    let mut measure = |label: String, mut f: Box<dyn FnMut() -> usize + '_>| {
        let mut best = f64::INFINITY;
        for _ in 0..args.runs {
            let t0 = Instant::now();
            std::hint::black_box(f());
            best = best.min(t0.elapsed().as_secs_f64());
        }
        println!("{label:<44} {:>12.0} queries/s   ({best:.4} s best of {})", nq / best, args.runs);
        timings.push((label, nq / best));
    };

    measure(
        "sequential TopKEngine loop, frozen store".into(),
        Box::new(|| {
            let mut engine = TopKEngine::new();
            queries.iter().map(|q| engine.query_topk(&index, q, args.k).neighbors.len()).sum()
        }),
    );
    let mut thread_counts = vec![1, 2, 4];
    if !thread_counts.contains(&args.threads) {
        thread_counts.push(args.threads);
    }
    for threads in thread_counts {
        let (index_ref, queries_ref) = (&index, &queries);
        measure(
            format!("query_topk_batch, frozen store, {threads} thread(s)"),
            Box::new(move || {
                index_ref
                    .query_topk_batch_with(queries_ref, args.k, Strategy::Hybrid, Some(threads))
                    .iter()
                    .map(|o| o.neighbors.len())
                    .sum()
            }),
        );
    }

    if let Some(path) = &args.json {
        let results: Vec<String> = timings
            .iter()
            .map(|(id, qps)| format!("    {{ \"id\": \"{id}\", \"queries_per_sec\": {qps:.1} }}"))
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"topk\",\n  \"command\": \"cargo run --release -p hlsh-bench --bin topk\",\n  \"params\": {{ \"n\": {}, \"queries\": {}, \"k\": {}, \"levels\": {}, \"dim\": {dim}, \"base_radius\": {base_r}, \"seed\": {} }},\n  \"recall_at_k\": {recall:.4},\n  \"levels_executed_mean\": {executed_mean:.3},\n  \"levels_skipped_mean\": {skipped_mean:.3},\n  \"early_exit_frac\": {early_frac:.3},\n  \"exact_fallback_frac\": {fallback_frac:.3},\n  \"build\": {{ \"secs\": {build_secs:.3}, \"points_per_sec\": {build_points_per_sec:.1}, \"mode\": \"blocked\" }},\n  \"build_secs\": {build_secs:.3},\n  \"results\": [\n{}\n  ]\n}}\n",
            args.n,
            args.queries,
            args.k,
            args.levels,
            args.seed,
            results.join(",\n"),
        );
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path}");
    }

    if recall < args.min_recall {
        eprintln!("recall@{} = {recall:.4} below required {:.4}", args.k, args.min_recall);
        std::process::exit(1);
    }
}
