//! Ablation: HLL register count `m`.
//!
//! §4.1 of the paper fixes m = 128 ("relative error at most 10%") and
//! remarks that for MNIST m = 32 already suffices, cutting the HLL cost
//! from 17.54% to 4.4% "without degrading the performance". This sweep
//! quantifies the accuracy/cost trade-off across m ∈ {16..256} on the
//! Webspam workload at the middle of the paper's radius range.
//!
//! ```text
//! cargo run --release -p hlsh-bench --bin ablate_m [--scale F]
//! ```

use hlsh_bench::experiment::{measure_radius, resolve_cost, ExperimentConfig};
use hlsh_bench::tablefmt::Table;
use hlsh_bench::CommonArgs;
use hlsh_datagen::DenseWorkload;
use hlsh_families::{k_paper, LshFamily, PaperDataset, SimHash};
use hlsh_vec::UnitCosine;

fn main() {
    let args = CommonArgs::from_env();
    let base = ExperimentConfig::from_args(&args, PaperDataset::Webspam);
    let w = DenseWorkload::paper(PaperDataset::Webspam, base.n, base.queries, base.seed);
    let r = 0.07; // mid-sweep radius
    let family = SimHash::new(w.data.dim());
    let k = k_paper(base.delta, base.l, family.collision_prob(r)).min(64);
    let cost = resolve_cost(&base, &w.data, &UnitCosine);

    let mut table = Table::new(
        &format!("Ablation: HLL precision on Webspam at r = {r} (paper: m = 128)"),
        &["m", "HLL cost %", "candSize err %", "err std %", "hybrid s", "LS calls %"],
    );
    for precision in 4u8..=8 {
        let mut cfg = base;
        cfg.hll_precision = precision;
        let row = measure_radius(
            w.data.clone(),
            &w.queries,
            family,
            UnitCosine,
            r,
            k,
            cost,
            PaperDataset::Webspam,
            &cfg,
        );
        table.row(vec![
            (1usize << precision).to_string(),
            format!("{:.2}", row.hll_cost_frac * 100.0),
            format!("{:.2}", row.hll_err_mean * 100.0),
            format!("{:.2}", row.hll_err_std * 100.0),
            format!("{:.4}", row.hybrid_secs),
            format!("{:.1}", row.ls_call_frac * 100.0),
        ]);
        eprintln!("[ablate_m] m = {} done", 1usize << precision);
    }
    table.print();
    println!("expected: error ~ 1.04/sqrt(m); cost grows with m; decisions stable for m >= 32");
}
