//! Diagnostic: prints the Algorithm 2 cost breakdown for each query of
//! the Webspam workload at one radius — collisions, estimated candSize,
//! both costs, the decision, and the calibrated α/β.
//!
//! ```text
//! cargo run --release -p hlsh-bench --bin explain [--scale F] [--queries N]
//! ```

// Queries and ground truth are parallel arrays; indexed loops are intentional.
#![allow(clippy::needless_range_loop)]
use hlsh_bench::{CommonArgs, ExperimentConfig, Table};
use hlsh_core::IndexBuilder;
use hlsh_datagen::{ground_truth, DenseWorkload};
use hlsh_families::{k_paper, LshFamily, PaperDataset, SimHash};
use hlsh_vec::{PointSet, UnitCosine};

fn main() {
    let args = CommonArgs::from_env();
    let cfg = ExperimentConfig::from_args(&args, PaperDataset::Webspam);
    let w = DenseWorkload::paper(PaperDataset::Webspam, cfg.n, cfg.queries, cfg.seed);
    let r = 0.08;
    let family = SimHash::new(w.data.dim());
    let k = k_paper(cfg.delta, cfg.l, family.collision_prob(r)).min(64);
    let n = w.data.len();

    let index = IndexBuilder::new(family, UnitCosine)
        .tables(cfg.l)
        .hash_len(k)
        .seed(cfg.seed)
        .build(w.data.clone());
    let cm = index.cost_model();
    println!(
        "n = {n}, r = {r}, k = {k}, L = {}, calibrated α = {:.1} ns, β = {:.1} ns, β/α = {:.2}",
        cfg.l,
        cm.alpha(),
        cm.beta(),
        cm.ratio()
    );

    let truth = ground_truth(index.data(), &w.queries, &UnitCosine, r);
    let mut table = Table::new(
        "Per-query cost breakdown (Webspam, r = 0.08)",
        &[
            "query",
            "output",
            "coll/n",
            "cand/n",
            "pred LSH/Lin",
            "meas LSH ms",
            "meas Lin ms",
            "meas LSH/Lin",
            "decision",
        ],
    );
    for qi in 0..w.queries.len() {
        let q = w.queries.point(qi);
        let est = index.explain(q);
        // Measured arm times (best of 3).
        let time_arm = |strategy| {
            (0..3)
                .map(|_| {
                    let t = std::time::Instant::now();
                    let out = index.query_with_strategy(q, r, strategy);
                    std::hint::black_box(out.ids.len());
                    t.elapsed().as_secs_f64() * 1e3
                })
                .fold(f64::INFINITY, f64::min)
        };
        let lsh_ms = time_arm(hlsh_core::Strategy::LshOnly);
        let lin_ms = time_arm(hlsh_core::Strategy::LinearOnly);
        table.row(vec![
            qi.to_string(),
            truth[qi].len().to_string(),
            format!("{:.2}", est.collisions as f64 / n as f64),
            format!("{:.2}", est.cand_size_estimate / n as f64),
            format!("{:.3}", est.lsh_cost / est.linear_cost),
            format!("{lsh_ms:.2}"),
            format!("{lin_ms:.2}"),
            format!("{:.3}", lsh_ms / lin_ms),
            if est.prefers_lsh() { "LSH" } else { "LINEAR" }.to_string(),
        ]);
    }
    table.print();
}
