//! Regenerates **Figure 2 (a–d)**: CPU time of the query set vs radius
//! for hybrid search, classic LSH and linear search, on all four data
//! sets (MNIST/Hamming, Webspam/cosine, CoverType/L1, Corel/L2).
//!
//! ```text
//! cargo run --release -p hlsh-bench --bin fig2 [--dataset webspam] [--scale F|--full]
//! ```
//!
//! The expected *shape* (paper §4.2): at small radii Hybrid ≈ LSH ≪
//! Linear; as the radius grows Hybrid detaches from LSH and converges
//! to Linear, with Webspam showing Hybrid strictly below both (hard
//! queries exist even at r = 0.05).

use hlsh_bench::experiment::{run_dataset, ExperimentConfig};
use hlsh_bench::tablefmt::{secs, Table};
use hlsh_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    for dataset in args.datasets() {
        let cfg = ExperimentConfig::from_args(&args, dataset);
        let rows = run_dataset(dataset, &cfg);
        let mut table = Table::new(
            &format!(
                "Figure 2: {} ({}), n = {}, {} queries, mean of {} runs — CPU time (s)",
                dataset.name(),
                dataset.metric(),
                cfg.n - cfg.queries,
                cfg.queries,
                cfg.runs
            ),
            &["radius", "k", "Hybrid", "LSH", "Linear", "winner"],
        );
        for row in &rows {
            let winner = if row.hybrid_secs <= row.lsh_secs && row.hybrid_secs <= row.linear_secs {
                "Hybrid"
            } else if row.lsh_secs <= row.linear_secs {
                "LSH"
            } else {
                "Linear"
            };
            table.row(vec![
                hlsh_bench::tablefmt::fmt_radius(row.radius),
                row.k.to_string(),
                secs(row.hybrid_secs),
                secs(row.lsh_secs),
                secs(row.linear_secs),
                winner.to_string(),
            ]);
        }
        table.print();
    }
}
