//! Experiment harness regenerating every table and figure of the
//! EDBT'17 evaluation (§4).
//!
//! One binary per artifact:
//!
//! | Paper artifact | Binary | What it prints |
//! |---|---|---|
//! | Table 1 | `table1` | relative HLL cost and candSize error per data set |
//! | Figure 2a–d | `fig2` | CPU time vs radius for Hybrid/LSH/Linear |
//! | Figure 3 left | `fig3` | avg/max/min output size vs radius (Webspam) |
//! | Figure 3 right | `fig3` | % of linear-search calls vs radius (Webspam) |
//! | §4.2 recall remark | `recall_table` | recall of all strategies per data set |
//!
//! Plus ablations (`ablate_m`, `ablate_lazy`, `ablate_ratio`,
//! `ablate_k`, `ablate_multiprobe`) and Criterion micro benches
//! (`cargo bench -p hlsh-bench`).
//!
//! All binaries accept `--scale <f>` (fraction of the paper's n,
//! default 0.05), `--full` (paper-scale n), `--queries`, `--runs`,
//! `--seed`, and print plain-text tables plus machine-readable CSV.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod experiment;
pub mod tablefmt;

pub use args::CommonArgs;
pub use experiment::{measure_radius, run_dataset, ExperimentConfig, RadiusRow};
pub use tablefmt::Table;
