//! The shared experiment runner behind every table/figure binary.
//!
//! For each (data set, radius) pair the runner rebuilds the index with
//! the paper's per-radius parameters (`k` from the δ-rule for the
//! sign-bit families; fixed `k` with radius-proportional `w` for the
//! p-stable families), measures the three strategies of Figure 2 over
//! the query set, and collects the instrumentation behind Table 1
//! (relative HLL cost and candSize error), Figure 3 (output sizes,
//! linear-call fraction) and the §4.2 recall remark.

use std::time::Instant;

use hlsh_core::search::ExecutedArm;
use hlsh_core::{CostModel, HybridLshIndex, IndexBuilder, QueryOutput, Strategy};
use hlsh_datagen::{ground_truth, BinaryWorkload, DenseWorkload};
use hlsh_families::{k_paper, BitSampling, LshFamily, PStableL1, PStableL2, PaperDataset, SimHash};
use hlsh_probe::{multiprobe_query, ProbeSequence};
use hlsh_vec::stats::Welford;
use hlsh_vec::{Distance, Hamming, PointSet, UnitCosine, L1, L2};

use crate::args::CommonArgs;

/// Full configuration of one experiment run.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Total generated points (queries are split off this count).
    pub n: usize,
    /// Query-set size (paper: 100).
    pub queries: usize,
    /// Repetitions to average (paper: 5).
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
    /// Hash tables `L` (paper: 50).
    pub l: usize,
    /// Failure probability δ (paper: 0.1).
    pub delta: f64,
    /// HLL precision (paper: 7 → m = 128).
    pub hll_precision: u8,
    /// Probes per table (1 = classic; >1 = multi-probe ablation).
    pub probes_per_table: usize,
    /// Lazy small-bucket sketches (paper §3.2 trick) on/off.
    pub lazy: bool,
    /// Force a fixed `β/α` ratio. `None` (default) calibrates α and β
    /// on the indexed data exactly as the paper does (§4.2 calibrates
    /// on a random sample of queries and data points). The published
    /// per-dataset constants (10, 10, 6, 1) belong to the authors'
    /// Python implementation and are exposed through
    /// [`PaperDataset::beta_over_alpha`] for the `ablate_ratio` sweep.
    pub ratio_override: Option<f64>,
}

impl ExperimentConfig {
    /// Builds the config for one data set from common CLI arguments.
    pub fn from_args(args: &CommonArgs, dataset: PaperDataset) -> Self {
        Self {
            n: args.n_for(dataset),
            queries: args.queries,
            runs: args.runs,
            seed: args.seed,
            l: 50,
            delta: 0.1,
            hll_precision: 7,
            probes_per_table: 1,
            lazy: true,
            ratio_override: None,
        }
    }
}

/// All measurements for one (data set, radius) point.
#[derive(Clone, Copy, Debug)]
pub struct RadiusRow {
    /// Data set.
    pub dataset: PaperDataset,
    /// Query radius.
    pub radius: f64,
    /// Concatenation width used.
    pub k: usize,
    /// Mean CPU seconds for the whole query set, hybrid strategy.
    pub hybrid_secs: f64,
    /// Mean CPU seconds, classic LSH.
    pub lsh_secs: f64,
    /// Mean CPU seconds, linear scan.
    pub linear_secs: f64,
    /// Fraction of hybrid queries that executed the linear arm
    /// (Figure 3 right).
    pub ls_call_frac: f64,
    /// Exact output-size statistics over the query set (Figure 3 left).
    pub out_min: usize,
    /// Mean exact output size.
    pub out_avg: f64,
    /// Maximum exact output size.
    pub out_max: usize,
    /// Mean per-query recall of hybrid search.
    pub hybrid_recall: f64,
    /// Mean per-query recall of classic LSH.
    pub lsh_recall: f64,
    /// Mean fraction of hybrid query time spent in HLL merge/estimate
    /// (Table 1 "% Cost").
    pub hll_cost_frac: f64,
    /// Mean relative error of the candSize estimate (Table 1
    /// "% Error").
    pub hll_err_mean: f64,
    /// Standard deviation of that error.
    pub hll_err_std: f64,
}

/// Runs the full radius sweep for one data set.
pub fn run_dataset(dataset: PaperDataset, cfg: &ExperimentConfig) -> Vec<RadiusRow> {
    match dataset {
        PaperDataset::Webspam => run_webspam(cfg),
        PaperDataset::CoverType => run_covertype(cfg),
        PaperDataset::Corel => run_corel(cfg),
        PaperDataset::Mnist => run_mnist(cfg),
    }
}

fn run_webspam(cfg: &ExperimentConfig) -> Vec<RadiusRow> {
    let w = DenseWorkload::paper(PaperDataset::Webspam, cfg.n, cfg.queries, cfg.seed);
    let cost = resolve_cost(cfg, &w.data, &UnitCosine);
    w.radii
        .iter()
        .map(|&r| {
            let family = SimHash::new(w.data.dim());
            let k = k_paper(cfg.delta, cfg.l, family.collision_prob(r)).min(64);
            measure_radius(
                w.data.clone(),
                &w.queries,
                family,
                UnitCosine,
                r,
                k,
                cost,
                PaperDataset::Webspam,
                cfg,
            )
        })
        .collect()
}

fn run_covertype(cfg: &ExperimentConfig) -> Vec<RadiusRow> {
    let w = DenseWorkload::paper(PaperDataset::CoverType, cfg.n, cfg.queries, cfg.seed);
    let cost = resolve_cost(cfg, &w.data, &L1);
    w.radii
        .iter()
        .map(|&r| {
            // Paper §4.1: k = 8, w = 4r for L1.
            let family = PStableL1::new(w.data.dim(), 4.0 * r);
            measure_radius(
                w.data.clone(),
                &w.queries,
                family,
                L1,
                r,
                8,
                cost,
                PaperDataset::CoverType,
                cfg,
            )
        })
        .collect()
}

fn run_corel(cfg: &ExperimentConfig) -> Vec<RadiusRow> {
    let w = DenseWorkload::paper(PaperDataset::Corel, cfg.n, cfg.queries, cfg.seed);
    let cost = resolve_cost(cfg, &w.data, &L2);
    w.radii
        .iter()
        .map(|&r| {
            // Paper §4.1: k = 7, w = 2r for L2.
            let family = PStableL2::new(w.data.dim(), 2.0 * r);
            measure_radius(
                w.data.clone(),
                &w.queries,
                family,
                L2,
                r,
                7,
                cost,
                PaperDataset::Corel,
                cfg,
            )
        })
        .collect()
}

fn run_mnist(cfg: &ExperimentConfig) -> Vec<RadiusRow> {
    let w = BinaryWorkload::paper(cfg.n, cfg.queries, cfg.seed);
    let cost = resolve_cost(cfg, &w.data, &Hamming);
    w.radii
        .iter()
        .map(|&r| {
            let family = BitSampling::new(64);
            let k = k_paper(cfg.delta, cfg.l, family.collision_prob(r)).min(64);
            measure_radius(
                w.data.clone(),
                &w.queries,
                family,
                Hamming,
                r,
                k,
                cost,
                PaperDataset::Mnist,
                cfg,
            )
        })
        .collect()
}

/// Resolves the cost model for a workload: a forced ratio if the
/// config carries one, otherwise a single calibration on the data that
/// is reused across the whole radius sweep (the paper's procedure —
/// one β/α per data set).
pub fn resolve_cost<S, D>(cfg: &ExperimentConfig, data: &S, distance: &D) -> CostModel
where
    S: PointSet,
    D: Distance<S::Point>,
{
    let cost = match cfg.ratio_override {
        Some(ratio) => CostModel::from_ratio(ratio),
        None => CostModel::calibrate(data, distance, 10_000.min(100 * data.len().max(1)), cfg.seed),
    };
    eprintln!(
        "[calibration] α = {:.1} ns, β_scan = {:.1} ns, β_cand = {:.1} ns (β/α = {:.1})",
        cost.alpha(),
        cost.beta(),
        cost.beta_cand(),
        cost.ratio()
    );
    cost
}

/// Builds the index for one radius and measures everything. Public so
/// the ablation binaries can sweep a single radius with custom
/// family/parameter combinations.
// Queries and truth are parallel arrays; the indexed loop is intentional.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
pub fn measure_radius<S, Q, F, D>(
    data: S,
    queries: &Q,
    family: F,
    distance: D,
    r: f64,
    k: usize,
    cost: CostModel,
    dataset: PaperDataset,
    cfg: &ExperimentConfig,
) -> RadiusRow
where
    S: PointSet + Sync,
    Q: PointSet<Point = S::Point> + Sync,
    F: LshFamily<S::Point> + Sync,
    F::GFn: ProbeSequence<S::Point> + Send + Sync,
    D: Distance<S::Point> + Sync,
{
    let m = 1usize << cfg.hll_precision;
    let index = IndexBuilder::new(family, distance.clone())
        .tables(cfg.l)
        .hash_len(k)
        .hll_precision(cfg.hll_precision)
        .lazy_threshold(if cfg.lazy { m } else { 1 })
        .seed(cfg.seed)
        .build_with_cost(data, Some(cost));

    // Exact answers: output-size stats + recall reference.
    let truth = ground_truth(index.data(), queries, &distance, r);
    let (mut out_min, mut out_max, mut out_sum) = (usize::MAX, 0usize, 0usize);
    for t in &truth {
        out_min = out_min.min(t.len());
        out_max = out_max.max(t.len());
        out_sum += t.len();
    }
    let nq = queries.len().max(1);

    // Timed passes. Single-probe sweeps go through the batch engine
    // (sharded across cores, per-thread scratch reuse); multi-probe
    // still walks the per-query path.
    let timed = |strategy: Strategy| -> f64 {
        let mut total = 0.0;
        for _ in 0..cfg.runs {
            let t0 = Instant::now();
            if cfg.probes_per_table <= 1 {
                let outs = index.query_batch_set(queries, r, strategy, None);
                std::hint::black_box(outs.iter().map(|o| o.ids.len()).sum::<usize>());
            } else {
                for qi in 0..queries.len() {
                    let out =
                        run_query(&index, queries.point(qi), r, strategy, cfg.probes_per_table);
                    std::hint::black_box(out.ids.len());
                }
            }
            total += t0.elapsed().as_secs_f64();
        }
        total / cfg.runs as f64
    };
    let hybrid_secs = timed(Strategy::Hybrid);
    let lsh_secs = timed(Strategy::LshOnly);
    let linear_secs = timed(Strategy::LinearOnly);

    // Instrumentation pass (untimed): strategy decisions, HLL cost and
    // error, recall.
    let mut ls_calls = 0usize;
    let mut hll_cost = Welford::new();
    let mut hll_err = Welford::new();
    let mut hybrid_recall = Welford::new();
    let mut lsh_recall = Welford::new();
    for qi in 0..queries.len() {
        let q = queries.point(qi);
        let hybrid = run_query(&index, q, r, Strategy::Hybrid, cfg.probes_per_table);
        if hybrid.report.executed == ExecutedArm::Linear {
            ls_calls += 1;
        }
        hll_cost.push(hybrid.report.hll_cost_fraction());
        // candSize error: exact size from the report when the LSH arm
        // ran, recomputed (untimed) otherwise.
        let exact = match hybrid.report.cand_size_actual {
            Some(c) => c,
            None => index.exact_cand_size(q),
        };
        if exact > 0 {
            hll_err.push((hybrid.report.cand_size_estimate - exact as f64).abs() / exact as f64);
        }
        hybrid_recall.push(recall_of(&hybrid, &truth[qi]));
        let lsh = run_query(&index, q, r, Strategy::LshOnly, cfg.probes_per_table);
        lsh_recall.push(recall_of(&lsh, &truth[qi]));
    }

    RadiusRow {
        dataset,
        radius: r,
        k,
        hybrid_secs,
        lsh_secs,
        linear_secs,
        ls_call_frac: ls_calls as f64 / nq as f64,
        out_min: if out_min == usize::MAX { 0 } else { out_min },
        out_avg: out_sum as f64 / nq as f64,
        out_max,
        hybrid_recall: hybrid_recall.mean(),
        lsh_recall: lsh_recall.mean(),
        hll_cost_frac: hll_cost.mean(),
        hll_err_mean: hll_err.mean(),
        hll_err_std: hll_err.std_dev(),
    }
}

fn run_query<S, F, D>(
    index: &HybridLshIndex<S, F, D>,
    q: &S::Point,
    r: f64,
    strategy: Strategy,
    probes: usize,
) -> QueryOutput
where
    S: PointSet,
    F: LshFamily<S::Point>,
    F::GFn: ProbeSequence<S::Point>,
    D: Distance<S::Point>,
{
    if probes <= 1 {
        index.query_with_strategy(q, r, strategy)
    } else {
        multiprobe_query(index, q, r, probes, strategy)
    }
}

/// One row of the shard-count sweep: construction and batch-query
/// throughput of a [`ShardedIndex`](hlsh_core::ShardedIndex) at one
/// shard count, frozen backend, on the mixture workload.
#[derive(Clone, Copy, Debug)]
pub struct ShardSweepRow {
    /// Number of shards.
    pub shards: usize,
    /// Median seconds to build all shards (parallel, direct-frozen).
    pub build_secs: f64,
    /// Indexed points per second during construction.
    pub build_points_per_sec: f64,
    /// Hybrid `query_batch` throughput (median of the runs).
    pub batch_queries_per_sec: f64,
}

/// Sweeps shard counts on the mixture workload: for each count, builds
/// a sharded frozen index (parallel shard construction, blocked
/// pipeline) and measures hybrid batch-query throughput. The first
/// row's query outputs are asserted equal across all counts — the
/// shard-merge determinism contract — before any timing is reported.
pub fn shard_sweep(
    dim: usize,
    n: usize,
    queries: usize,
    radius: f64,
    seed: u64,
    shard_counts: &[usize],
    runs: usize,
) -> Vec<ShardSweepRow> {
    use hlsh_core::{ShardAssignment, ShardedIndex};
    use hlsh_families::PStableL2;
    use hlsh_vec::L2;

    assert!(queries < n, "query count must be below n");
    let (mut data, _) = hlsh_datagen::benchmark_mixture(dim, n, radius, seed);
    let q_rows: Vec<usize> = (0..queries).map(|i| i * (n / queries)).collect();
    let queries_ds = data.split_off_rows(&q_rows);
    let query_vecs: Vec<Vec<f32>> =
        (0..queries_ds.len()).map(|i| queries_ds.row(i).to_vec()).collect();
    let builder = || {
        IndexBuilder::new(PStableL2::new(dim, 2.0 * radius), L2)
            .tables(20)
            .hash_len(8)
            .seed(seed)
            .cost_model(CostModel::from_ratio(6.0))
    };

    let mut reference: Option<Vec<Vec<u32>>> = None;
    shard_counts
        .iter()
        .map(|&shards| {
            let assignment = ShardAssignment::new(seed, shards);
            let build_secs = {
                let mut secs = Vec::with_capacity(runs);
                for _ in 0..runs {
                    let t0 = Instant::now();
                    std::hint::black_box(
                        ShardedIndex::build_frozen(data.clone(), assignment, builder()).len(),
                    );
                    secs.push(t0.elapsed().as_secs_f64());
                }
                secs.sort_by(|a, b| a.total_cmp(b));
                secs[secs.len() / 2]
            };
            let index = ShardedIndex::build_frozen(data.clone(), assignment, builder());

            // Determinism gate: every shard count reports the same ids.
            let ids: Vec<Vec<u32>> =
                index.query_batch(&query_vecs, radius).into_iter().map(|o| o.ids).collect();
            match &reference {
                None => reference = Some(ids),
                Some(expect) => {
                    assert_eq!(expect, &ids, "shard count {shards} changed query outputs")
                }
            }

            let mut qps = Vec::with_capacity(runs);
            for _ in 0..runs {
                let t0 = Instant::now();
                let outs = index.query_batch(&query_vecs, radius);
                std::hint::black_box(outs.iter().map(|o| o.ids.len()).sum::<usize>());
                qps.push(query_vecs.len() as f64 / t0.elapsed().as_secs_f64());
            }
            qps.sort_by(|a, b| a.total_cmp(b));
            ShardSweepRow {
                shards,
                build_secs,
                build_points_per_sec: data.len() as f64 / build_secs,
                batch_queries_per_sec: qps[qps.len() / 2],
            }
        })
        .collect()
}

/// Macro-averaged recall@k of top-k outputs against exact top-k ground
/// truth (the [`hlsh_datagen::ground_truth_topk`] format): per query,
/// `|reported ∩ truth| / |truth|`, averaged over the query set. Empty
/// truth counts as full recall.
pub fn recall_at_k(outputs: &[hlsh_core::TopKOutput], truth: &[Vec<(u32, f64)>]) -> f64 {
    assert_eq!(outputs.len(), truth.len(), "outputs and truth must be parallel");
    if outputs.is_empty() {
        return 1.0;
    }
    let mut total = 0.0;
    for (out, t) in outputs.iter().zip(truth) {
        if t.is_empty() {
            total += 1.0;
            continue;
        }
        let truth_ids: std::collections::HashSet<u32> = t.iter().map(|&(id, _)| id).collect();
        let hits = out.neighbors.iter().filter(|n| truth_ids.contains(&n.id)).count();
        total += hits as f64 / truth_ids.len() as f64;
    }
    total / outputs.len() as f64
}

fn recall_of(out: &QueryOutput, truth: &[u32]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let set: std::collections::HashSet<u32> = truth.iter().copied().collect();
    let hits = out.ids.iter().filter(|id| set.contains(id)).count();
    hits as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(n: usize) -> ExperimentConfig {
        ExperimentConfig {
            n,
            queries: 8,
            runs: 1,
            seed: 9,
            l: 8,
            delta: 0.1,
            hll_precision: 7,
            probes_per_table: 1,
            lazy: true,
            ratio_override: None,
        }
    }

    #[test]
    fn mnist_rows_are_complete() {
        let rows = run_dataset(PaperDataset::Mnist, &tiny_cfg(600));
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.hybrid_secs > 0.0);
            assert!(row.lsh_secs > 0.0);
            assert!(row.linear_secs > 0.0);
            assert!(row.out_max >= row.out_min);
            assert!((0.0..=1.0).contains(&row.ls_call_frac));
            assert!((0.0..=1.0).contains(&row.hybrid_recall));
            assert!(row.k >= 1 && row.k <= 64);
        }
        // Radii ascend with the paper sweep.
        assert_eq!(rows[0].radius, 12.0);
        assert_eq!(rows[5].radius, 17.0);
    }

    #[test]
    fn webspam_hybrid_recall_at_least_lsh() {
        // Hybrid falls back to exact scans on hard queries, so its mean
        // recall must not be below classic LSH by more than noise.
        let rows = run_dataset(PaperDataset::Webspam, &tiny_cfg(1_500));
        for row in &rows {
            assert!(
                row.hybrid_recall >= row.lsh_recall - 0.05,
                "r={}: hybrid {} < lsh {}",
                row.radius,
                row.hybrid_recall,
                row.lsh_recall
            );
        }
    }

    #[test]
    fn corel_and_covertype_run() {
        let rows = run_dataset(PaperDataset::Corel, &tiny_cfg(800));
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].k, 7);
        let rows = run_dataset(PaperDataset::CoverType, &tiny_cfg(800));
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].k, 8);
    }

    #[test]
    fn recall_at_k_counts_hits() {
        use hlsh_core::{Neighbor, TopKOutput, TopKReport};
        let report = TopKReport {
            levels_executed: 1,
            levels_skipped: 0,
            early_exit: false,
            exact_fallback: false,
            verified: 2,
            total_nanos: 0,
        };
        let out = |ids: &[u32]| TopKOutput {
            neighbors: ids.iter().map(|&id| Neighbor { id, dist: id as f64 }).collect(),
            report,
        };
        // Query 0: 1 of 2 truth ids found; query 1: both found.
        let outputs = vec![out(&[1, 9]), out(&[4, 5])];
        let truth = vec![vec![(1u32, 0.0), (2, 1.0)], vec![(4u32, 0.0), (5, 1.0)]];
        assert!((recall_at_k(&outputs, &truth) - 0.75).abs() < 1e-12);
        // Empty truth counts as full recall; empty inputs are 1.0.
        assert_eq!(recall_at_k(&[out(&[])], &[vec![]]), 1.0);
        assert_eq!(recall_at_k(&[], &[]), 1.0);
    }

    #[test]
    fn shard_sweep_rows_are_complete_and_deterministic() {
        let rows = shard_sweep(8, 400, 16, 1.2, 3, &[1, 2, 4], 1);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.build_secs > 0.0);
            assert!(row.build_points_per_sec > 0.0);
            assert!(row.batch_queries_per_sec > 0.0);
        }
        assert_eq!(rows[0].shards, 1);
        assert_eq!(rows[2].shards, 4);
    }

    #[test]
    fn multiprobe_config_runs() {
        let mut cfg = tiny_cfg(500);
        cfg.probes_per_table = 4;
        cfg.l = 4;
        let rows = run_dataset(PaperDataset::Mnist, &cfg);
        assert_eq!(rows.len(), 6);
    }
}
