//! Minimal dependency-free CLI argument parsing shared by all
//! experiment binaries.

use hlsh_families::PaperDataset;

/// Arguments shared by every experiment binary.
#[derive(Clone, Debug, PartialEq)]
pub struct CommonArgs {
    /// Fraction of each data set's paper-scale `n` to generate.
    pub scale: f64,
    /// Query-set size (paper: 100).
    pub queries: usize,
    /// Repeated runs to average (paper: 5).
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
    /// Restrict to one data set (`--dataset`), if given.
    pub dataset: Option<PaperDataset>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        Self { scale: 0.05, queries: 100, runs: 3, seed: 42, dataset: None }
    }
}

impl CommonArgs {
    /// Parses `std::env::args`-style strings. Unknown flags abort with
    /// a usage message; `--full` sets `scale = 1.0` (paper scale).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value")?;
                    out.scale = v.parse().map_err(|_| format!("bad --scale {v:?}"))?;
                    if out.scale <= 0.0 || out.scale > 1.0 {
                        return Err(format!("--scale must be in (0, 1], got {}", out.scale));
                    }
                }
                "--full" => out.scale = 1.0,
                "--queries" => {
                    let v = it.next().ok_or("--queries needs a value")?;
                    out.queries = v.parse().map_err(|_| format!("bad --queries {v:?}"))?;
                }
                "--runs" => {
                    let v = it.next().ok_or("--runs needs a value")?;
                    out.runs = v.parse().map_err(|_| format!("bad --runs {v:?}"))?;
                    if out.runs == 0 {
                        return Err("--runs must be positive".into());
                    }
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    out.seed = v.parse().map_err(|_| format!("bad --seed {v:?}"))?;
                }
                "--dataset" => {
                    let v = it.next().ok_or("--dataset needs a value")?;
                    out.dataset = Some(parse_dataset(&v)?);
                }
                "--help" | "-h" => {
                    return Err(usage());
                }
                other => return Err(format!("unknown flag {other:?}\n{}", usage())),
            }
        }
        Ok(out)
    }

    /// Parses the real process arguments, exiting with a message on
    /// error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The data sets to run: the selected one, or all four.
    pub fn datasets(&self) -> Vec<PaperDataset> {
        match self.dataset {
            Some(d) => vec![d],
            None => PaperDataset::ALL.to_vec(),
        }
    }

    /// Scaled `n` for a data set.
    pub fn n_for(&self, d: PaperDataset) -> usize {
        ((d.paper_n() as f64 * self.scale) as usize).max(self.queries * 2)
    }
}

fn parse_dataset(s: &str) -> Result<PaperDataset, String> {
    match s.to_ascii_lowercase().as_str() {
        "corel" => Ok(PaperDataset::Corel),
        "covertype" => Ok(PaperDataset::CoverType),
        "webspam" => Ok(PaperDataset::Webspam),
        "mnist" => Ok(PaperDataset::Mnist),
        other => Err(format!("unknown dataset {other:?} (expected corel|covertype|webspam|mnist)")),
    }
}

fn usage() -> String {
    "usage: <bin> [--scale F | --full] [--queries N] [--runs N] [--seed N] \
     [--dataset corel|covertype|webspam|mnist]"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<CommonArgs, String> {
        CommonArgs::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, CommonArgs::default());
        assert_eq!(a.datasets().len(), 4);
    }

    #[test]
    fn full_flag_and_scale() {
        assert_eq!(parse(&["--full"]).unwrap().scale, 1.0);
        assert_eq!(parse(&["--scale", "0.2"]).unwrap().scale, 0.2);
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--scale", "2"]).is_err());
        assert!(parse(&["--scale"]).is_err());
    }

    #[test]
    fn dataset_selection() {
        let a = parse(&["--dataset", "webspam"]).unwrap();
        assert_eq!(a.dataset, Some(PaperDataset::Webspam));
        assert_eq!(a.datasets(), vec![PaperDataset::Webspam]);
        assert!(parse(&["--dataset", "imagenet"]).is_err());
        assert!(parse(&["--dataset", "MNIST"]).unwrap().dataset == Some(PaperDataset::Mnist));
    }

    #[test]
    fn numeric_flags() {
        let a = parse(&["--queries", "10", "--runs", "2", "--seed", "7"]).unwrap();
        assert_eq!((a.queries, a.runs, a.seed), (10, 2, 7));
        assert!(parse(&["--runs", "0"]).is_err());
        assert!(parse(&["--seed", "x"]).is_err());
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn scaled_n_has_floor() {
        let a = parse(&["--scale", "0.001", "--queries", "100"]).unwrap();
        // 0.001 · 60,000 = 60 < 2·queries → floor kicks in.
        assert_eq!(a.n_for(PaperDataset::Mnist), 200);
        let b = parse(&["--scale", "0.1"]).unwrap();
        assert_eq!(b.n_for(PaperDataset::Webspam), 35_000);
    }
}
