//! Property-based tests of the LSH families: determinism, locality
//! (closer points collide at least as often), probability-curve sanity
//! and parameter-rule invariants.

use hlsh_families::sampling::rng_stream;
use hlsh_families::{
    k_paper, k_safe, recall_lower_bound, BitSampling, GFunction, LshFamily, MinHash, PStableL1,
    PStableL2, SimHash,
};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn gfn_keys_are_deterministic(
        seed in 0u64..500,
        k in 1usize..12,
        p in vec(-5.0f32..5.0, 10),
    ) {
        let fam = PStableL2::new(10, 2.0);
        let g1 = fam.sample(k, &mut rng_stream(seed, 0));
        let g2 = fam.sample(k, &mut rng_stream(seed, 0));
        prop_assert_eq!(g1.bucket_key(&p), g2.bucket_key(&p));
        prop_assert_eq!(g1.k(), k);
    }

    #[test]
    fn collision_prob_curves_are_valid(r in 0.0f64..100.0) {
        for p in [
            BitSampling::new(64).collision_prob(r),
            SimHash::new(16).collision_prob(r.min(2.0)),
            PStableL1::new(8, 4.0).collision_prob(r),
            PStableL2::new(8, 4.0).collision_prob(r),
            MinHash::new(64).collision_prob(r.min(1.0)),
        ] {
            prop_assert!((0.0..=1.0).contains(&p), "p = {p} at r = {r}");
        }
    }

    #[test]
    fn collision_prob_monotone_decreasing(r1 in 0.0f64..50.0, dr in 0.0f64..50.0) {
        let r2 = r1 + dr;
        prop_assert!(
            PStableL2::new(4, 3.0).collision_prob(r2)
                <= PStableL2::new(4, 3.0).collision_prob(r1) + 1e-12
        );
        prop_assert!(
            PStableL1::new(4, 3.0).collision_prob(r2)
                <= PStableL1::new(4, 3.0).collision_prob(r1) + 1e-12
        );
        prop_assert!(
            BitSampling::new(64).collision_prob(r2)
                <= BitSampling::new(64).collision_prob(r1) + 1e-12
        );
    }

    /// Locality on actual hashes: the identical point always collides,
    /// and a point at small perturbation collides at least as often as
    /// a far one (statistically; we use a deterministic seed sweep).
    #[test]
    fn closer_points_collide_more(seed in 0u64..50) {
        let dim = 8;
        let fam = PStableL2::new(dim, 2.0);
        let base = vec![0.0f32; dim];
        let mut near = base.clone();
        near[0] = 0.5;
        let mut far = base.clone();
        far[0] = 20.0;
        let trials = 200;
        let mut near_hits = 0;
        let mut far_hits = 0;
        let mut rng = rng_stream(seed, 1);
        for _ in 0..trials {
            let g = fam.sample(2, &mut rng);
            let kb = g.bucket_key(&base);
            if g.bucket_key(&near) == kb {
                near_hits += 1;
            }
            if g.bucket_key(&far) == kb {
                far_hits += 1;
            }
        }
        prop_assert!(near_hits >= far_hits,
            "near {near_hits} < far {far_hits}");
    }

    #[test]
    fn k_rules_bracket_the_bound(p1 in 0.05f64..0.99, l in 1usize..200) {
        let kp = k_paper(0.1, l, p1);
        let ks = k_safe(0.1, l, p1);
        prop_assert!(ks <= kp);
        prop_assert!(kp - ks <= 1);
        // The safe rule actually delivers the recall bound.
        prop_assert!(recall_lower_bound(p1, ks, l) >= 0.9 - 1e-9
            // Unless even k = 1 cannot reach it (tiny p1, tiny L).
            || ks == 1);
    }

    #[test]
    fn recall_bound_monotone_in_l(p in 0.01f64..0.99, k in 1usize..10, l in 1usize..100) {
        let r1 = recall_lower_bound(p, k, l);
        let r2 = recall_lower_bound(p, k, l + 1);
        prop_assert!(r2 >= r1 - 1e-12);
        prop_assert!((0.0..=1.0).contains(&r1));
    }

    #[test]
    fn minhash_identical_sets_always_collide(
        words in vec(any::<u64>(), 4),
        k in 1usize..6,
        seed in 0u64..100,
    ) {
        let fam = MinHash::new(256);
        let g = fam.sample(k, &mut rng_stream(seed, 2));
        prop_assert_eq!(g.bucket_key(&words), g.bucket_key(&words));
    }

    #[test]
    fn bitsampling_key_fits_k_bits(k in 1usize..64, word in any::<u64>()) {
        let fam = BitSampling::new(64);
        let g = fam.sample(k, &mut rng_stream(3, 4));
        let key = g.bucket_key(&[word]);
        if k < 64 {
            prop_assert!(key < (1u64 << k), "key {key} uses more than {k} bits");
        }
    }
}
