//! MinHash — min-wise independent permutations for Jaccard distance
//! (Broder, Charikar, Frieze, Mitzenmacher, STOC'98).
//!
//! An atomic hash applies a random permutation (approximated by a seeded
//! 64-bit mix) to the universe of set elements and returns the minimum
//! hash over the set's members. Two sets collide with probability equal
//! to their Jaccard *similarity*, so `p(r) = 1 − r` for Jaccard distance
//! `r`. The paper cites this family as one of the LSH schemes its hybrid
//! strategy applies to; we include it as the extension family for
//! near-duplicate detection examples.

use rand::rngs::StdRng;
use rand::Rng;

use crate::family::{combine_atoms, GFunction, LshFamily};
use hlsh_hll::hash::splitmix64;

/// The MinHash family over packed binary points interpreted as subsets
/// of `{0, ..., dim_bits−1}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinHash {
    dim_bits: usize,
}

impl MinHash {
    /// Creates the family for sets over a `dim_bits`-element universe.
    ///
    /// # Panics
    /// Panics if `dim_bits == 0`.
    pub fn new(dim_bits: usize) -> Self {
        assert!(dim_bits > 0, "universe size must be positive");
        Self { dim_bits }
    }

    /// Universe size.
    pub fn dim_bits(&self) -> usize {
        self.dim_bits
    }
}

/// A sampled g-function: `k` permutation seeds; the key mixes the `k`
/// min-hash values.
#[derive(Clone, Debug)]
pub struct MinHashGFn {
    seeds: Vec<u64>,
}

impl MinHashGFn {
    /// Min-hash value of one atom: minimum seeded hash over set bits.
    /// Empty sets map to `u64::MAX` (they all collide with each other).
    fn atom_value(seed: u64, p: &[u64]) -> u64 {
        let mut min = u64::MAX;
        for (word_idx, &word) in p.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as u64;
                let elem = (word_idx as u64) * 64 + bit;
                let h = splitmix64(elem ^ seed);
                if h < min {
                    min = h;
                }
                w &= w - 1;
            }
        }
        min
    }
}

impl GFunction<[u64]> for MinHashGFn {
    fn bucket_key(&self, p: &[u64]) -> u64 {
        combine_atoms(self.seeds.iter().map(|&s| Self::atom_value(s, p)))
    }

    fn k(&self) -> usize {
        self.seeds.len()
    }
}

impl LshFamily<[u64]> for MinHash {
    type GFn = MinHashGFn;

    fn sample(&self, k: usize, rng: &mut StdRng) -> MinHashGFn {
        assert!(k > 0, "k must be positive");
        let seeds = (0..k).map(|_| rng.gen()).collect();
        MinHashGFn { seeds }
    }

    /// `p(r) = 1 − r`: collision probability equals Jaccard similarity.
    fn collision_prob(&self, r: f64) -> f64 {
        (1.0 - r).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "MinHash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::rng_stream;
    use hlsh_vec::BinaryVec;

    fn set_of(bits: &[usize], width: usize) -> BinaryVec {
        let mut v = BinaryVec::zeros(width);
        for &b in bits {
            v.set(b, true);
        }
        v
    }

    #[test]
    fn collision_prob_is_one_minus_r() {
        let f = MinHash::new(100);
        assert_eq!(f.collision_prob(0.0), 1.0);
        assert_eq!(f.collision_prob(1.0), 0.0);
        assert!((f.collision_prob(0.3) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn identical_sets_always_collide() {
        let f = MinHash::new(128);
        let g = f.sample(4, &mut rng_stream(1, 0));
        let s = set_of(&[3, 77, 100], 128);
        assert_eq!(g.bucket_key(s.words()), g.bucket_key(s.words()));
    }

    #[test]
    fn empty_sets_collide_with_each_other() {
        let f = MinHash::new(128);
        let g = f.sample(3, &mut rng_stream(2, 0));
        let a = BinaryVec::zeros(128);
        let b = BinaryVec::zeros(128);
        assert_eq!(g.bucket_key(a.words()), g.bucket_key(b.words()));
    }

    #[test]
    fn empirical_collision_rate_equals_jaccard_similarity() {
        // |a| = |b| = 30, |a ∩ b| = 20, |a ∪ b| = 40 → J = 0.5.
        let width = 256;
        let a = set_of(&(0..30).collect::<Vec<_>>(), width);
        let b = set_of(&(10..50).collect::<Vec<_>>(), width);
        let sim = 1.0 - hlsh_vec::binary::jaccard_distance(&a, &b);
        let f = MinHash::new(width);
        let mut rng = rng_stream(42, 0);
        let trials = 10_000;
        let mut hits = 0;
        for _ in 0..trials {
            let g = f.sample(1, &mut rng);
            if g.bucket_key(a.words()) == g.bucket_key(b.words()) {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!((rate - sim).abs() < 0.02, "rate {rate} vs similarity {sim}");
    }

    #[test]
    fn k_atoms_sharpen_selectivity() {
        // With k atoms the g-collision probability is J^k.
        let width = 256;
        let a = set_of(&(0..40).collect::<Vec<_>>(), width);
        let b = set_of(&(20..60).collect::<Vec<_>>(), width); // J = 1/3
        let f = MinHash::new(width);
        let mut rng = rng_stream(43, 0);
        let trials = 5_000;
        let mut hits = 0;
        for _ in 0..trials {
            let g = f.sample(3, &mut rng);
            if g.bucket_key(a.words()) == g.bucket_key(b.words()) {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        let theory = (1.0f64 / 3.0).powi(3);
        assert!((rate - theory).abs() < 0.02, "rate {rate} vs theory {theory}");
    }
}
