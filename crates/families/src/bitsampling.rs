//! Bit-sampling LSH for Hamming distance (Indyk & Motwani, STOC'98).
//!
//! An atomic hash picks a uniformly random coordinate `i` and returns
//! bit `x_i`. Two points at Hamming distance `r` in `d` bits collide
//! with probability exactly `p(r) = 1 − r/d`. The paper uses this family
//! for MNIST after compressing each image to a 64-bit SimHash
//! fingerprint.

use rand::rngs::StdRng;
use rand::Rng;

use crate::family::{GFunction, LshFamily};

/// The bit-sampling family over packed binary points of `dim_bits` bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitSampling {
    dim_bits: usize,
}

impl BitSampling {
    /// Creates the family for `dim_bits`-bit points.
    ///
    /// # Panics
    /// Panics if `dim_bits == 0`.
    pub fn new(dim_bits: usize) -> Self {
        assert!(dim_bits > 0, "bit width must be positive");
        Self { dim_bits }
    }

    /// Bit width of the points this family hashes.
    pub fn dim_bits(&self) -> usize {
        self.dim_bits
    }
}

/// A sampled g-function: `k ≤ 64` coordinate indexes whose bits are
/// concatenated into the bucket key (bit `j` of the key is coordinate
/// `coords[j]` of the point).
#[derive(Clone, Debug)]
pub struct BitSamplingGFn {
    coords: Vec<u32>,
}

impl BitSamplingGFn {
    /// The sampled coordinates (exposed for the multi-probe extension:
    /// flipping key bit `j` probes the bucket that differs in coordinate
    /// `coords[j]`).
    pub fn coords(&self) -> &[u32] {
        &self.coords
    }
}

impl GFunction<[u64]> for BitSamplingGFn {
    #[inline]
    fn bucket_key(&self, p: &[u64]) -> u64 {
        let mut key = 0u64;
        for (j, &c) in self.coords.iter().enumerate() {
            let bit = (p[(c / 64) as usize] >> (c % 64)) & 1;
            key |= bit << j;
        }
        key
    }

    fn k(&self) -> usize {
        self.coords.len()
    }
}

impl LshFamily<[u64]> for BitSampling {
    type GFn = BitSamplingGFn;

    fn sample(&self, k: usize, rng: &mut StdRng) -> BitSamplingGFn {
        assert!(k > 0, "k must be positive");
        assert!(k <= 64, "bit-sampling keys are capped at 64 bits, got k = {k}");
        let coords = (0..k).map(|_| rng.gen_range(0..self.dim_bits as u32)).collect();
        BitSamplingGFn { coords }
    }

    /// `p(r) = max(0, 1 − r/d)` — exact, not an approximation.
    fn collision_prob(&self, r: f64) -> f64 {
        (1.0 - r / self.dim_bits as f64).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "bit-sampling"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::rng_stream;
    use hlsh_vec::BinaryVec;

    #[test]
    fn collision_prob_endpoints() {
        let f = BitSampling::new(64);
        assert_eq!(f.collision_prob(0.0), 1.0);
        assert_eq!(f.collision_prob(64.0), 0.0);
        assert!((f.collision_prob(16.0) - 0.75).abs() < 1e-12);
        assert_eq!(f.collision_prob(100.0), 0.0); // clamped
    }

    #[test]
    fn identical_points_always_collide() {
        let f = BitSampling::new(64);
        let mut rng = rng_stream(5, 0);
        let g = f.sample(20, &mut rng);
        let p = BinaryVec::from_u64(0x0123_4567_89AB_CDEF);
        assert_eq!(g.bucket_key(p.words()), g.bucket_key(p.words()));
        assert_eq!(g.k(), 20);
    }

    #[test]
    fn keys_use_only_sampled_coords() {
        let f = BitSampling::new(128);
        let mut rng = rng_stream(9, 0);
        let g = f.sample(10, &mut rng);
        let mut a = BinaryVec::zeros(128);
        let mut b = BinaryVec::zeros(128);
        // Flip a coordinate that is NOT sampled: keys must stay equal.
        let unsampled = (0..128u32).find(|c| !g.coords().contains(c)).unwrap();
        b.set(unsampled as usize, true);
        assert_eq!(g.bucket_key(a.words()), g.bucket_key(b.words()));
        // Flip a sampled coordinate: keys must differ.
        let sampled = g.coords()[0];
        a.set(sampled as usize, true);
        assert_ne!(g.bucket_key(a.words()), g.bucket_key(b.words()));
    }

    #[test]
    #[should_panic(expected = "capped at 64")]
    fn k_over_64_panics() {
        let f = BitSampling::new(128);
        let _ = f.sample(65, &mut rng_stream(0, 0));
    }

    #[test]
    fn empirical_collision_rate_matches_theory() {
        // Points at exact Hamming distance r: a single sampled bit
        // collides with probability 1 - r/d.
        let d = 64usize;
        let r = 16usize;
        let f = BitSampling::new(d);
        let a = BinaryVec::zeros(d);
        let mut b = BinaryVec::zeros(d);
        for i in 0..r {
            b.set(i * 4, true); // distance exactly 16
        }
        let mut rng = rng_stream(123, 0);
        let trials = 20_000;
        let mut collisions = 0;
        for _ in 0..trials {
            let g = f.sample(1, &mut rng);
            if g.bucket_key(a.words()) == g.bucket_key(b.words()) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        let theory = f.collision_prob(r as f64);
        assert!((rate - theory).abs() < 0.015, "rate {rate} vs theory {theory}");
    }
}
