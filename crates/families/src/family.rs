//! The [`LshFamily`] / [`GFunction`] abstraction (Definition 2 of the
//! paper, after Indyk & Motwani).

use rand::rngs::StdRng;

/// A locality-sensitive family of hash functions over points `P`.
///
/// A family is `(r, cr, p1, p2)`-sensitive when near points (distance
/// ≤ r) collide with probability ≥ p1 under a uniformly drawn atomic
/// hash and far points (distance ≥ cr) with probability ≤ p2. The
/// classic construction concatenates `k` atomic hashes into a
/// *g-function* and builds `L` tables from independent g-functions.
pub trait LshFamily<P: ?Sized>: Clone + Send + Sync {
    /// The concatenated hash function `g = (h_1, ..., h_k)`.
    type GFn: GFunction<P>;

    /// Samples one g-function of `k` atoms.
    ///
    /// # Panics
    /// Implementations panic if `k == 0` or `k` exceeds a
    /// family-specific bound (e.g. 64 bits for sign families).
    fn sample(&self, k: usize, rng: &mut StdRng) -> Self::GFn;

    /// Analytic collision probability of a *single* atomic hash for two
    /// points at distance exactly `r` (`p(r)`; `p1 = p(r)` at the query
    /// radius). Monotone non-increasing in `r`, with `p(0) = 1`.
    fn collision_prob(&self, r: f64) -> f64;

    /// Short family name for reports.
    fn name(&self) -> &'static str;
}

/// A sampled g-function: maps a point to a 64-bit bucket key.
///
/// Keys of sign-bit families (bit sampling, SimHash) are the raw
/// concatenation of the `k` bits; unbounded-atom families (p-stable,
/// MinHash) mix their atoms through a 64-bit avalanche combiner. In both
/// cases equal inputs give equal keys and the probability that two
/// points with *different* atom vectors share a key is ~2⁻⁶⁴
/// (negligible versus p2).
pub trait GFunction<P: ?Sized>: Send + Sync {
    /// Hashes a point to its bucket key.
    fn bucket_key(&self, p: &P) -> u64;

    /// Number of concatenated atoms `k`.
    fn k(&self) -> usize;

    /// Hashes the contiguous point range `start .. start + out.len()`
    /// of `data`, writing the key of point `start + i` to `out[i]` —
    /// the build-side batch entry point: Algorithm 1 construction hands
    /// whole blocks of points to each table instead of looping
    /// point-by-point.
    ///
    /// The default is the per-point [`bucket_key`](Self::bucket_key)
    /// loop. Dense projection families (p-stable, SimHash) override it
    /// to push the entire block through one point-blocked
    /// matrix–matrix kernel ([`hlsh_vec::kernels::matmat`]); overrides
    /// must produce **bit-identical keys** to the default, so blocked
    /// and per-point builds yield byte-identical indexes.
    ///
    /// # Panics
    /// Panics if `start + out.len()` exceeds `data.len()`.
    fn bucket_keys_block<S>(&self, data: &S, start: usize, out: &mut [u64])
    where
        S: hlsh_vec::PointSet<Point = P> + ?Sized,
    {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.bucket_key(data.point(start + i));
        }
    }
}

/// Initial state of the atom-combining fold (an FNV-ish offset basis).
///
/// Exposed together with [`combine_step`] so hot `bucket_key`
/// implementations can fold atoms incrementally — e.g. straight out of
/// a matrix–vector kernel callback — without materialising an atom
/// vector; `atoms.fold(COMBINE_SEED, combine_step) == combine_atoms(atoms)`.
pub const COMBINE_SEED: u64 = 0x51_7C_C1_B7_27_22_0A_95;

/// One step of the atom-combining fold; see [`COMBINE_SEED`].
#[inline]
pub fn combine_step(key: u64, atom: u64) -> u64 {
    hlsh_hll::hash::splitmix64(key ^ atom)
}

/// Mixes a sequence of atom values into one 64-bit bucket key.
///
/// Uses a SplitMix64-based fold; empty input maps to a fixed constant.
#[inline]
pub fn combine_atoms<I: IntoIterator<Item = u64>>(atoms: I) -> u64 {
    atoms.into_iter().fold(COMBINE_SEED, combine_step)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_is_deterministic_and_order_sensitive() {
        assert_eq!(combine_atoms([1, 2, 3]), combine_atoms([1, 2, 3]));
        assert_ne!(combine_atoms([1, 2, 3]), combine_atoms([3, 2, 1]));
        assert_ne!(combine_atoms([1]), combine_atoms([1, 1]));
    }

    #[test]
    fn combine_empty_is_stable() {
        assert_eq!(combine_atoms(std::iter::empty()), combine_atoms(std::iter::empty()));
    }

    #[test]
    fn combine_has_no_easy_collisions() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            for j in 0..4u64 {
                assert!(seen.insert(combine_atoms([i, j])), "collision ({i},{j})");
            }
        }
    }
}
