//! p-stable LSH for L1 and L2 distances (Datar, Immorlica, Indyk,
//! Mirrokni, SoCG'04).
//!
//! An atomic hash is `h(x) = ⌊(a·x + b) / w⌋` with `a` drawn from a
//! p-stable distribution (Cauchy for L1, Gaussian for L2) and
//! `b ~ U[0, w)`. The paper's settings (§4.1): CoverType uses L1 with
//! `k = 8, w = 4r`; Corel uses L2 with `k = 7, w = 2r`.
//!
//! The collision probability for two points at distance `c` is
//! `p(c) = ∫₀^w (1/c)·f_p(t/c)·(1 − t/w) dt` which has the closed forms
//! implemented in [`PStableL2::collision_prob`] (Gaussian) and
//! [`PStableL1::collision_prob`] (Cauchy).

use rand::rngs::StdRng;
use rand::Rng;

use crate::family::{combine_atoms, combine_step, GFunction, LshFamily, COMBINE_SEED};
use crate::sampling;
use hlsh_vec::kernels;
use hlsh_vec::stats::normal_cdf;

/// Which stable distribution the projections are drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stable {
    /// Standard Cauchy — 1-stable, for L1.
    Cauchy,
    /// Standard Gaussian — 2-stable, for L2.
    Gaussian,
}

/// A sampled p-stable g-function of `k` atoms.
///
/// All `k` projection directions are packed into one row-major
/// `[k × dim]` matrix so a query computes every hash coordinate with a
/// single matrix–vector kernel ([`hlsh_vec::kernels::matvec_each`])
/// instead of `k` separate scalar dot products; the shifts `b_j` stay
/// in a parallel `f64` array.
#[derive(Clone, Debug)]
pub struct PStableGFn {
    dim: usize,
    /// `k` rows of length `dim`: row `j` is projection direction `a_j`.
    proj: Vec<f32>,
    /// Per-atom shifts `b_j ~ U[0, w)`.
    shifts: Vec<f64>,
    w: f64,
}

impl PStableGFn {
    /// The raw (un-mixed) atom values `⌊(a_i·x + b_i)/w⌋`, exposed for
    /// the multi-probe extension which perturbs them by ±1.
    pub fn atom_values(&self, p: &[f32]) -> Vec<i64> {
        let mut values = Vec::with_capacity(self.shifts.len());
        kernels::matvec_each(&self.proj, self.dim, p, |j, proj| {
            values.push(((proj + self.shifts[j]) / self.w).floor() as i64);
        });
        values
    }

    /// Distance from the projection `a_j·x + b_j` to the *lower* slot
    /// boundary, in `[0, w)`. Multi-probe scores a −1 perturbation of
    /// atom `j` by this value and a +1 perturbation by `w − value`.
    ///
    /// Uses the same chunked dot kernel as the matrix–vector path, so
    /// the slot implied here always matches [`atom_values`](Self::atom_values).
    pub fn boundary_offset(&self, j: usize, p: &[f32]) -> f64 {
        let row = &self.proj[j * self.dim..(j + 1) * self.dim];
        let proj = kernels::dot(row, p) + self.shifts[j];
        let slot = (proj / self.w).floor();
        proj - slot * self.w
    }

    /// Slot width `w`.
    pub fn w(&self) -> f64 {
        self.w
    }

    /// Mixes explicit atom values into a bucket key; used by multi-probe
    /// to address perturbed buckets.
    pub fn key_from_atoms(&self, values: &[i64]) -> u64 {
        debug_assert_eq!(values.len(), self.shifts.len());
        combine_atoms(values.iter().map(|&v| v as u64))
    }

    /// Reassembles a g-function from its sampled parts (the snapshot
    /// loader's entry point — persisted snapshots store the projection
    /// matrix and shifts verbatim so loading never re-runs the sampler).
    ///
    /// # Panics
    /// Panics if the shapes are inconsistent (`proj` is not a
    /// `shifts.len() × dim` matrix), `dim == 0`, `shifts` is empty, or
    /// `w <= 0`.
    pub fn from_parts(dim: usize, proj: Vec<f32>, shifts: Vec<f64>, w: f64) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert!(!shifts.is_empty(), "k must be positive");
        assert!(w > 0.0, "slot width must be positive");
        assert_eq!(proj.len(), shifts.len() * dim, "projection matrix must be k × dim");
        Self { dim, proj, shifts, w }
    }

    /// The sampled parts `(dim, proj, shifts, w)`: the row-major
    /// `[k × dim]` projection matrix and the per-atom shifts. Inverse of
    /// [`from_parts`](Self::from_parts).
    pub fn parts(&self) -> (usize, &[f32], &[f64], f64) {
        (self.dim, &self.proj, &self.shifts, self.w)
    }
}

impl GFunction<[f32]> for PStableGFn {
    #[inline]
    fn bucket_key(&self, p: &[f32]) -> u64 {
        // One matvec for all k coordinates, folded into the key on the
        // fly — no per-query allocation.
        let mut key = COMBINE_SEED;
        kernels::matvec_each(&self.proj, self.dim, p, |j, proj| {
            let slot = ((proj + self.shifts[j]) / self.w).floor() as i64;
            key = combine_step(key, slot as u64);
        });
        key
    }

    fn k(&self) -> usize {
        self.shifts.len()
    }

    /// All `B × k` projections of a point block in one [`matmat`]
    /// kernel call, folded into per-point keys. The kernel reduces each
    /// (projection, point) pair with the same schedule as the
    /// per-point matvec, so the keys are bit-identical to a
    /// [`bucket_key`](GFunction::bucket_key) loop.
    ///
    /// [`matmat`]: hlsh_vec::kernels::matmat
    fn bucket_keys_block<S>(&self, data: &S, start: usize, out: &mut [u64])
    where
        S: hlsh_vec::PointSet<Point = [f32]> + ?Sized,
    {
        let k = self.shifts.len();
        let Some(block) = data.dense_block(start, out.len()) else {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = self.bucket_key(data.point(start + i));
            }
            return;
        };
        let mut proj = vec![0.0f64; out.len() * k];
        kernels::matmat(&self.proj, self.dim, block, &mut proj);
        for (pi, slot) in out.iter_mut().enumerate() {
            let mut key = COMBINE_SEED;
            for (j, &p) in proj[pi * k..(pi + 1) * k].iter().enumerate() {
                let s = ((p + self.shifts[j]) / self.w).floor() as i64;
                key = combine_step(key, s as u64);
            }
            *slot = key;
        }
    }
}

fn sample_gfn(dim: usize, w: f64, stable: Stable, k: usize, rng: &mut StdRng) -> PStableGFn {
    assert!(k > 0, "k must be positive");
    let mut proj = Vec::with_capacity(k * dim);
    let mut shifts = Vec::with_capacity(k);
    for _ in 0..k {
        let a = match stable {
            Stable::Cauchy => sampling::cauchy_vector(rng, dim),
            Stable::Gaussian => sampling::normal_vector(rng, dim),
        };
        proj.extend_from_slice(&a);
        shifts.push(rng.gen::<f64>() * w);
    }
    PStableGFn { dim, proj, shifts, w }
}

/// The L2 (Gaussian projections) p-stable family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PStableL2 {
    dim: usize,
    w: f64,
}

impl PStableL2 {
    /// Creates the family with slot width `w` (the paper sets `w = 2r`
    /// for the Corel experiment).
    ///
    /// # Panics
    /// Panics if `dim == 0` or `w <= 0`.
    pub fn new(dim: usize, w: f64) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert!(w > 0.0, "slot width must be positive");
        Self { dim, w }
    }

    /// Point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Slot width `w`.
    pub fn w(&self) -> f64 {
        self.w
    }
}

impl LshFamily<[f32]> for PStableL2 {
    type GFn = PStableGFn;

    fn sample(&self, k: usize, rng: &mut StdRng) -> PStableGFn {
        sample_gfn(self.dim, self.w, Stable::Gaussian, k, rng)
    }

    /// Closed form (Datar et al., Eq. for the Gaussian case): with
    /// `t = w/c`,
    /// `p(c) = 1 − 2Φ(−t) − (2/(√(2π)·t))·(1 − e^{−t²/2})`.
    fn collision_prob(&self, r: f64) -> f64 {
        if r <= 0.0 {
            return 1.0;
        }
        let t = self.w / r;
        let p = 1.0
            - 2.0 * normal_cdf(-t)
            - 2.0 / ((2.0 * std::f64::consts::PI).sqrt() * t) * (1.0 - (-t * t / 2.0).exp());
        p.clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "p-stable L2"
    }
}

/// The L1 (Cauchy projections) p-stable family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PStableL1 {
    dim: usize,
    w: f64,
}

impl PStableL1 {
    /// Creates the family with slot width `w` (the paper sets `w = 4r`
    /// for the CoverType experiment).
    ///
    /// # Panics
    /// Panics if `dim == 0` or `w <= 0`.
    pub fn new(dim: usize, w: f64) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert!(w > 0.0, "slot width must be positive");
        Self { dim, w }
    }

    /// Point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Slot width `w`.
    pub fn w(&self) -> f64 {
        self.w
    }
}

impl LshFamily<[f32]> for PStableL1 {
    type GFn = PStableGFn;

    fn sample(&self, k: usize, rng: &mut StdRng) -> PStableGFn {
        sample_gfn(self.dim, self.w, Stable::Cauchy, k, rng)
    }

    /// Closed form (Datar et al., Cauchy case): with `t = w/c`,
    /// `p(c) = (2/π)·arctan(t) − (1/(π·t))·ln(1 + t²)`.
    fn collision_prob(&self, r: f64) -> f64 {
        if r <= 0.0 {
            return 1.0;
        }
        let t = self.w / r;
        let p =
            2.0 * t.atan() / std::f64::consts::PI - (1.0 + t * t).ln() / (std::f64::consts::PI * t);
        p.clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "p-stable L1"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::rng_stream;

    #[test]
    fn l2_collision_prob_shape() {
        let f = PStableL2::new(8, 4.0);
        assert_eq!(f.collision_prob(0.0), 1.0);
        // Monotone decreasing in r.
        let mut prev = 1.0;
        for i in 1..100 {
            let p = f.collision_prob(i as f64 * 0.2);
            assert!(p <= prev + 1e-12, "not monotone at {i}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
        // Far points nearly never collide.
        assert!(f.collision_prob(100.0) < 0.05);
    }

    #[test]
    fn l1_collision_prob_shape() {
        let f = PStableL1::new(8, 4.0);
        assert_eq!(f.collision_prob(0.0), 1.0);
        let mut prev = 1.0;
        for i in 1..100 {
            let p = f.collision_prob(i as f64 * 0.2);
            assert!(p <= prev + 1e-12, "not monotone at {i}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
        assert!(f.collision_prob(100.0) < 0.1);
    }

    #[test]
    fn paper_parameter_regimes_have_high_p1() {
        // w = 2r (L2): t = 2 → p1 should be comfortably above 0.5.
        let l2 = PStableL2::new(32, 2.0);
        let p1 = l2.collision_prob(1.0);
        assert!(p1 > 0.6 && p1 < 0.9, "L2 p1 at w=2r: {p1}");
        // w = 4r (L1): t = 4 → 2·atan(4)/π − ln(17)/(4π) ≈ 0.6186.
        let l1 = PStableL1::new(54, 4.0);
        let p1_l1 = l1.collision_prob(1.0);
        assert!((p1_l1 - 0.6186).abs() < 1e-3, "L1 p1 at w=4r: {p1_l1}");
    }

    #[test]
    fn key_deterministic_and_atoms_consistent() {
        let f = PStableL2::new(6, 2.0);
        let g = f.sample(7, &mut rng_stream(21, 0));
        let x = [0.1f32, -0.4, 0.9, 2.2, -1.0, 0.3];
        assert_eq!(g.bucket_key(&x), g.bucket_key(&x));
        assert_eq!(g.k(), 7);
        let atoms = g.atom_values(&x);
        assert_eq!(atoms.len(), 7);
        assert_eq!(g.key_from_atoms(&atoms), g.bucket_key(&x));
    }

    #[test]
    fn blocked_keys_match_per_point_keys_bitwise() {
        use hlsh_vec::{DenseDataset, PointSet};
        // Block sizes straddling the kernel's 2-point tile, dims
        // straddling the lane width; both stable distributions.
        for (dim, n) in [(6usize, 11usize), (24, 16), (33, 5), (64, 4)] {
            let data = DenseDataset::from_rows(
                dim,
                (0..n).map(|i| {
                    (0..dim).map(|j| ((i * dim + j) as f32 * 0.29).sin() * 2.0).collect::<Vec<_>>()
                }),
            );
            for k in [1usize, 4, 7] {
                let g2 = PStableL2::new(dim, 1.7).sample(k, &mut rng_stream(13, 0));
                let g1 = PStableL1::new(dim, 2.3).sample(k, &mut rng_stream(14, 0));
                for g in [&g2, &g1] {
                    let mut blocked = vec![0u64; n];
                    g.bucket_keys_block(&data, 0, &mut blocked);
                    for (i, &key) in blocked.iter().enumerate() {
                        assert_eq!(key, g.bucket_key(data.point(i)), "dim={dim} n={n} k={k} i={i}");
                    }
                    // A sub-range (unaligned start) must agree too.
                    if n > 3 {
                        let mut part = vec![0u64; n - 3];
                        g.bucket_keys_block(&data, 2, &mut part);
                        assert_eq!(part[..], blocked[2..n - 1], "sub-range dim={dim} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn boundary_offset_in_range() {
        let f = PStableL1::new(5, 3.0);
        let g = f.sample(8, &mut rng_stream(2, 0));
        let x = [1.0f32, 2.0, -0.5, 0.0, 4.0];
        for j in 0..8 {
            let off = g.boundary_offset(j, &x);
            assert!((0.0..3.0).contains(&off), "offset {off} outside [0, w)");
        }
    }

    #[test]
    fn nearby_points_share_keys_more_often_than_far() {
        let dim = 16;
        let f = PStableL2::new(dim, 4.0);
        let mut rng = rng_stream(31, 0);
        let x = vec![0.0f32; dim];
        let mut near = x.clone();
        near[0] = 1.0; // distance 1, w/c = 4
        let mut far = x.clone();
        far[0] = 16.0; // distance 16, w/c = 0.25
        let trials = 2_000;
        let (mut c_near, mut c_far) = (0, 0);
        for _ in 0..trials {
            let g = f.sample(1, &mut rng);
            if g.bucket_key(&x) == g.bucket_key(&near) {
                c_near += 1;
            }
            if g.bucket_key(&x) == g.bucket_key(&far) {
                c_far += 1;
            }
        }
        assert!(c_near > c_far * 2, "near {c_near} far {c_far}");
    }

    #[test]
    fn empirical_l2_collision_matches_closed_form() {
        let dim = 12;
        let w = 3.0;
        let c = 1.5; // distance
        let f = PStableL2::new(dim, w);
        let x = vec![0.0f32; dim];
        let mut y = x.clone();
        y[3] = c as f32;
        let mut rng = rng_stream(55, 0);
        let trials = 20_000;
        let mut hits = 0;
        for _ in 0..trials {
            let g = f.sample(1, &mut rng);
            if g.bucket_key(&x) == g.bucket_key(&y) {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        let theory = f.collision_prob(c);
        assert!((rate - theory).abs() < 0.02, "rate {rate} vs theory {theory}");
    }

    #[test]
    fn empirical_l1_collision_matches_closed_form() {
        let dim = 12;
        let w = 4.0;
        let c = 2.0;
        let f = PStableL1::new(dim, w);
        let x = vec![0.0f32; dim];
        let mut y = x.clone();
        // L1 distance c spread over two coordinates.
        y[0] = 1.0;
        y[5] = -1.0;
        let mut rng = rng_stream(56, 0);
        let trials = 20_000;
        let mut hits = 0;
        for _ in 0..trials {
            let g = f.sample(1, &mut rng);
            if g.bucket_key(&x) == g.bucket_key(&y) {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        let theory = f.collision_prob(c);
        assert!((rate - theory).abs() < 0.02, "rate {rate} vs theory {theory}");
    }

    #[test]
    #[should_panic(expected = "slot width must be positive")]
    fn zero_w_rejected() {
        let _ = PStableL2::new(4, 0.0);
    }
}
