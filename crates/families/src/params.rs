//! LSH parameter selection, including the paper's rule for `k`.
//!
//! The paper fixes the number of tables `L` and derives the
//! concatenation width `k` from the target failure probability `δ`
//! (footnote 1, the E2LSH practical setting):
//!
//! ```text
//! k = ⌈ log(1 − δ^{1/L}) / log p₁ ⌉
//! ```
//!
//! Rationale: a near neighbor collides in one table with probability
//! `p₁^k`, is missed by all `L` tables with probability
//! `(1 − p₁^k)^L`, and we need that to be at most `δ`; solving gives
//! `p₁^k ≥ 1 − δ^{1/L}`. Note the *ceiling* makes `k` one step too
//! aggressive when the bound is not integral (larger `k` reduces
//! per-table collision probability), so we also provide the
//! guarantee-preserving *floor* variant [`k_safe`]; the `ablate_k`
//! bench quantifies the difference.

use hlsh_vec::MetricKind;

/// The paper's `k` rule (ceiling variant, default everywhere).
///
/// # Panics
/// Panics unless `0 < δ < 1`, `L ≥ 1` and `0 < p₁ < 1`.
pub fn k_paper(delta: f64, l: usize, p1: f64) -> usize {
    let bound = k_bound(delta, l, p1);
    (bound.ceil() as usize).max(1)
}

/// Guarantee-preserving variant: the largest `k` with
/// `p₁^k ≥ 1 − δ^{1/L}`, i.e. the floor of the same bound (min 1).
pub fn k_safe(delta: f64, l: usize, p1: f64) -> usize {
    let bound = k_bound(delta, l, p1);
    (bound.floor() as usize).max(1)
}

fn k_bound(delta: f64, l: usize, p1: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1), got {delta}");
    assert!(l >= 1, "need at least one table");
    assert!(p1 > 0.0 && p1 < 1.0, "p1 must be in (0,1), got {p1}");
    let per_table = 1.0 - delta.powf(1.0 / l as f64);
    per_table.ln() / p1.ln()
}

/// Probability that a point at single-atom collision probability `p`
/// is reported by at least one of `L` tables with `k`-atom keys:
/// `1 − (1 − p^k)^L`. This is the per-point recall lower bound for
/// points exactly at the query radius.
pub fn recall_lower_bound(p: f64, k: usize, l: usize) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    1.0 - (1.0 - p.powi(k as i32)).powi(l as i32)
}

/// A cost-optimal `(k, L)` pair chosen by [`optimize_k_l`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TunedParams {
    /// Concatenation width.
    pub k: usize,
    /// Table count (the smallest `L` meeting the recall target at this
    /// `k`).
    pub l: usize,
    /// The model's estimated per-query cost, in `α` units (for
    /// comparing candidates, not for wall-clock prediction).
    pub estimated_cost: f64,
}

/// Chooses `(k, L)` minimising the modelled query cost subject to the
/// recall constraint `1 − (1 − p₁^k)^L ≥ 1 − δ`.
///
/// The cost model mirrors the paper's Eq. 1 in expectation: per table a
/// query pays one `k`-atom hash (`k·hash_cost` in `α` units) plus
/// `n·p₂^k` expected collisions with *far* points (each `α`) — near
/// points are output and must be paid by any correct algorithm, so they
/// don't differentiate candidates. Raising `k` empties the buckets but
/// forces more tables; this function walks `k = 1..=max_k` and returns
/// the sweet spot, the standard E2LSH-style auto-tuning the paper's
/// footnote alludes to (there with `L` fixed).
///
/// # Panics
/// Panics unless `0 < p₂ ≤ p₁ < 1`, `0 < δ < 1` and `max_k ≥ 1`.
pub fn optimize_k_l(
    p1: f64,
    p2: f64,
    n: usize,
    delta: f64,
    max_k: usize,
    hash_cost_alpha_units: f64,
) -> TunedParams {
    assert!(p1 > 0.0 && p1 < 1.0, "p1 must be in (0,1), got {p1}");
    assert!(p2 > 0.0 && p2 <= p1, "need 0 < p2 <= p1, got p2 = {p2}");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    assert!(max_k >= 1, "max_k must be positive");

    let mut best: Option<TunedParams> = None;
    for k in 1..=max_k {
        // Smallest L with (1 − p1^k)^L ≤ δ.
        let miss = 1.0 - p1.powi(k as i32);
        let l = if miss <= 0.0 { 1 } else { (delta.ln() / miss.ln()).ceil().max(1.0) as usize };
        let per_table = k as f64 * hash_cost_alpha_units + n as f64 * p2.powi(k as i32);
        let cost = l as f64 * per_table;
        if best.is_none_or(|b| cost < b.estimated_cost) {
            best = Some(TunedParams { k, l, estimated_cost: cost });
        }
    }
    best.expect("max_k >= 1 guarantees a candidate")
}

/// The four evaluation data sets of the paper (§4), with their published
/// shapes and per-dataset tuning constants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// Corel Images: n = 68,040, d = 32, L2.
    Corel,
    /// CoverType: n = 581,012, d = 54, L1.
    CoverType,
    /// Webspam: n = 350,000, d = 254, cosine.
    Webspam,
    /// MNIST: n = 60,000, d = 780 → 64-bit fingerprints, Hamming.
    Mnist,
}

impl PaperDataset {
    /// All four data sets in the paper's presentation order.
    pub const ALL: [PaperDataset; 4] =
        [PaperDataset::Webspam, PaperDataset::CoverType, PaperDataset::Corel, PaperDataset::Mnist];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::Corel => "Corel",
            PaperDataset::CoverType => "CoverType",
            PaperDataset::Webspam => "Webspam",
            PaperDataset::Mnist => "MNIST",
        }
    }

    /// Published point count `n`.
    pub fn paper_n(&self) -> usize {
        match self {
            PaperDataset::Corel => 68_040,
            PaperDataset::CoverType => 581_012,
            PaperDataset::Webspam => 350_000,
            PaperDataset::Mnist => 60_000,
        }
    }

    /// Published dimensionality `d` (raw; MNIST is fingerprinted to 64
    /// bits before indexing).
    pub fn paper_dim(&self) -> usize {
        match self {
            PaperDataset::Corel => 32,
            PaperDataset::CoverType => 54,
            PaperDataset::Webspam => 254,
            PaperDataset::Mnist => 780,
        }
    }

    /// The metric the paper pairs with this data set.
    pub fn metric(&self) -> MetricKind {
        match self {
            PaperDataset::Corel => MetricKind::L2,
            PaperDataset::CoverType => MetricKind::L1,
            PaperDataset::Webspam => MetricKind::Cosine,
            PaperDataset::Mnist => MetricKind::Hamming,
        }
    }

    /// The radii swept in Figure 2, in presentation order.
    pub fn figure2_radii(&self) -> Vec<f64> {
        match self {
            PaperDataset::Mnist => (12..=17).map(|r| r as f64).collect(),
            PaperDataset::Webspam => (5..=10).map(|r| r as f64 / 100.0).collect(),
            PaperDataset::CoverType => (0..=5).map(|i| 3000.0 + 200.0 * i as f64).collect(),
            PaperDataset::Corel => (0..=5).map(|i| 0.35 + 0.05 * i as f64).collect(),
        }
    }

    /// The paper's calibrated `β/α` cost ratio for this data set
    /// (§4.2: 10, 10, 6, 1 for Webspam, CoverType, Corel, MNIST).
    pub fn beta_over_alpha(&self) -> f64 {
        match self {
            PaperDataset::Webspam => 10.0,
            PaperDataset::CoverType => 10.0,
            PaperDataset::Corel => 6.0,
            PaperDataset::Mnist => 1.0,
        }
    }
}

/// The shared experimental constants of §4.1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperParams {
    /// Number of hash tables (`L = 50`).
    pub l: usize,
    /// Failure probability (`δ = 0.1`).
    pub delta: f64,
    /// HLL register-count exponent (`m = 128` → precision 7).
    pub hll_precision: u8,
    /// Query-set size (100 random points removed from the data set).
    pub queries: usize,
    /// Number of repeated runs averaged (5).
    pub runs: usize,
}

impl Default for PaperParams {
    fn default() -> Self {
        Self { l: 50, delta: 0.1, hll_precision: 7, queries: 100, runs: 5 }
    }
}

impl PaperParams {
    /// `k` for a sign-bit family at single-atom collision probability
    /// `p1`, per the paper rule.
    pub fn k_for(&self, p1: f64) -> usize {
        k_paper(self.delta, self.l, p1)
    }

    /// Fixed `k` and `w` for the p-stable experiments: the paper adjusts
    /// `k = 8, w = 4r` for L1 and `k = 7, w = 2r` for L2 to hit δ = 10%.
    pub fn pstable_k_w(&self, metric: MetricKind, r: f64) -> (usize, f64) {
        match metric {
            MetricKind::L1 => (8, 4.0 * r),
            MetricKind::L2 => (7, 2.0 * r),
            other => panic!("pstable_k_w is only defined for L1/L2, got {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_paper_matches_hand_computation() {
        // δ = 0.1, L = 50: per-table target 1 − 0.1^{0.02} ≈ 0.0450.
        // p1 = 0.9 → k = ⌈ln(0.0450)/ln(0.9)⌉ = ⌈29.44⌉ = 30.
        assert_eq!(k_paper(0.1, 50, 0.9), 30);
        assert_eq!(k_safe(0.1, 50, 0.9), 29);
    }

    #[test]
    fn k_safe_preserves_recall_bound() {
        for &p1 in &[0.5, 0.7, 0.9, 0.95, 0.99] {
            for &l in &[10usize, 50, 100] {
                let delta = 0.1;
                let k = k_safe(delta, l, p1);
                let recall = recall_lower_bound(p1, k, l);
                assert!(recall >= 1.0 - delta - 1e-9, "p1={p1} L={l} k={k} recall={recall}");
            }
        }
    }

    #[test]
    fn k_paper_is_within_one_of_k_safe() {
        for &p1 in &[0.5, 0.66, 0.8, 0.9, 0.99] {
            let kp = k_paper(0.1, 50, p1);
            let ks = k_safe(0.1, 50, p1);
            assert!(kp == ks || kp == ks + 1, "p1={p1}: {kp} vs {ks}");
        }
    }

    #[test]
    fn higher_p1_allows_larger_k() {
        assert!(k_paper(0.1, 50, 0.95) > k_paper(0.1, 50, 0.7));
    }

    #[test]
    fn recall_bound_endpoints() {
        assert!((recall_lower_bound(1.0, 5, 3) - 1.0).abs() < 1e-12);
        assert_eq!(recall_lower_bound(0.0, 5, 3), 0.0);
        // Single table, single atom: recall = p.
        assert!((recall_lower_bound(0.3, 1, 1) - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "delta must be in (0,1)")]
    fn k_paper_rejects_bad_delta() {
        let _ = k_paper(0.0, 50, 0.9);
    }

    #[test]
    #[should_panic(expected = "p1 must be in (0,1)")]
    fn k_paper_rejects_bad_p1() {
        let _ = k_paper(0.1, 50, 1.0);
    }

    #[test]
    fn paper_dataset_metadata() {
        assert_eq!(PaperDataset::Webspam.paper_n(), 350_000);
        assert_eq!(PaperDataset::Mnist.paper_dim(), 780);
        assert_eq!(PaperDataset::Corel.metric(), MetricKind::L2);
        assert_eq!(PaperDataset::CoverType.beta_over_alpha(), 10.0);
        assert_eq!(PaperDataset::Mnist.beta_over_alpha(), 1.0);
        assert_eq!(PaperDataset::ALL.len(), 4);
    }

    #[test]
    fn figure2_radii_match_paper_axes() {
        assert_eq!(PaperDataset::Mnist.figure2_radii(), vec![12.0, 13.0, 14.0, 15.0, 16.0, 17.0]);
        let ws = PaperDataset::Webspam.figure2_radii();
        assert_eq!(ws.first().copied(), Some(0.05));
        assert_eq!(ws.last().copied(), Some(0.10));
        let ct = PaperDataset::CoverType.figure2_radii();
        assert_eq!(ct.first().copied(), Some(3000.0));
        assert_eq!(ct.last().copied(), Some(4000.0));
        let co = PaperDataset::Corel.figure2_radii();
        assert!((co[0] - 0.35).abs() < 1e-9);
        assert!((co[5] - 0.60).abs() < 1e-9);
    }

    #[test]
    fn paper_params_defaults() {
        let p = PaperParams::default();
        assert_eq!(p.l, 50);
        assert_eq!(p.delta, 0.1);
        assert_eq!(1usize << p.hll_precision, 128);
        assert_eq!(p.pstable_k_w(MetricKind::L1, 1000.0), (8, 4000.0));
        assert_eq!(p.pstable_k_w(MetricKind::L2, 0.5), (7, 1.0));
    }

    #[test]
    #[should_panic(expected = "only defined for L1/L2")]
    fn pstable_k_w_rejects_other_metrics() {
        let _ = PaperParams::default().pstable_k_w(MetricKind::Cosine, 1.0);
    }

    #[test]
    fn optimizer_meets_recall_target() {
        let t = optimize_k_l(0.9, 0.5, 100_000, 0.1, 40, 2.0);
        let recall = recall_lower_bound(0.9, t.k, t.l);
        assert!(recall >= 0.9 - 1e-9, "k={} L={} recall={recall}", t.k, t.l);
        assert!(t.k >= 1 && t.l >= 1);
        assert!(t.estimated_cost.is_finite());
    }

    #[test]
    fn optimizer_scales_k_with_n() {
        // More points → longer keys pay off (bucket emptying beats the
        // extra tables).
        let small = optimize_k_l(0.9, 0.5, 1_000, 0.1, 40, 2.0);
        let large = optimize_k_l(0.9, 0.5, 10_000_000, 0.1, 40, 2.0);
        assert!(large.k >= small.k, "small {:?} large {:?}", small, large);
    }

    #[test]
    fn optimizer_beats_naive_k1() {
        // At n = 1e6, k = 1 costs ~n·p2 per table; the optimum must be
        // far cheaper.
        let t = optimize_k_l(0.9, 0.6, 1_000_000, 0.1, 40, 2.0);
        let k1_l = (0.1f64.ln() / (1.0 - 0.9f64).ln()).ceil() as usize;
        let k1_cost = k1_l as f64 * (2.0 + 1_000_000.0 * 0.6);
        assert!(t.estimated_cost < k1_cost / 10.0);
    }

    #[test]
    fn optimizer_with_tight_gap_prefers_moderate_k() {
        // p1 ≈ p2 (hard regime): longer keys barely separate, so the
        // optimizer should not explode k beyond max_k anyway.
        let t = optimize_k_l(0.9, 0.88, 10_000, 0.1, 24, 2.0);
        assert!(t.k <= 24);
        assert!(recall_lower_bound(0.9, t.k, t.l) >= 0.9 - 1e-9);
    }

    #[test]
    #[should_panic(expected = "p2 <= p1")]
    fn optimizer_rejects_inverted_gap() {
        let _ = optimize_k_l(0.5, 0.9, 100, 0.1, 8, 1.0);
    }
}
