//! Deterministic random sampling of projection vectors.
//!
//! `rand` (without `rand_distr`) provides only uniform draws, so the
//! standard normal and standard Cauchy variates needed by the p-stable
//! families are generated here: Box–Muller for N(0,1), inverse-CDF
//! (`tan`) for Cauchy. Every sampler takes an explicit RNG so the whole
//! pipeline is reproducible from one `u64` master seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives an independent RNG stream from a master seed and stream id.
///
/// Streams are decorrelated by SplitMix64 mixing, so e.g. table `j` of
/// an index can use `rng_stream(seed, j)` without overlapping table
/// `j+1`.
pub fn rng_stream(master_seed: u64, stream: u64) -> StdRng {
    let mixed =
        hlsh_hll::hash::splitmix64(master_seed ^ stream.wrapping_mul(hlsh_hll::hash::GOLDEN_GAMMA));
    StdRng::seed_from_u64(mixed)
}

/// One standard normal variate via Box–Muller.
///
/// Uses the cosine branch only; the per-call cost is irrelevant because
/// sampling happens once at index-build time.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// One standard Cauchy variate via inverse CDF: `tan(π(u − ½))`.
pub fn standard_cauchy(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen();
    (std::f64::consts::PI * (u - 0.5)).tan()
}

/// Fills a vector with i.i.d. standard normal components.
pub fn normal_vector(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    (0..dim).map(|_| standard_normal(rng) as f32).collect()
}

/// Fills a vector with i.i.d. standard Cauchy components.
pub fn cauchy_vector(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    (0..dim).map(|_| standard_cauchy(rng) as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a: f64 = rng_stream(1, 0).gen();
        let a2: f64 = rng_stream(1, 0).gen();
        let b: f64 = rng_stream(1, 1).gen();
        let c: f64 = rng_stream(2, 0).gen();
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn normal_moments() {
        let mut rng = rng_stream(42, 0);
        let n = 40_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_symmetry() {
        let mut rng = rng_stream(7, 3);
        let n = 20_000;
        let positive = (0..n).filter(|_| standard_normal(&mut rng) > 0.0).count();
        let frac = positive as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "positive fraction {frac}");
    }

    #[test]
    fn cauchy_median_and_quartiles() {
        // Cauchy has no mean; check median ≈ 0 and quartiles ≈ ±1.
        let mut rng = rng_stream(11, 0);
        let mut xs: Vec<f64> = (0..40_000).map(|_| standard_cauchy(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        let q1 = xs[xs.len() / 4];
        let q3 = xs[3 * xs.len() / 4];
        assert!(median.abs() < 0.05, "median {median}");
        assert!((q1 + 1.0).abs() < 0.1, "q1 {q1}");
        assert!((q3 - 1.0).abs() < 0.1, "q3 {q3}");
    }

    #[test]
    fn vectors_have_requested_dim() {
        let mut rng = rng_stream(0, 0);
        assert_eq!(normal_vector(&mut rng, 17).len(), 17);
        assert_eq!(cauchy_vector(&mut rng, 5).len(), 5);
    }
}
