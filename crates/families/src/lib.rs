//! Locality-sensitive hash families for the hybrid-LSH reproduction.
//!
//! One family per metric used in the paper's evaluation (§4):
//!
//! | Family | Metric | Paper usage |
//! |---|---|---|
//! | [`BitSampling`] | Hamming | MNIST (on 64-bit SimHash fingerprints) |
//! | [`SimHash`] | cosine | Webspam; also produces the MNIST fingerprints |
//! | [`PStableL1`] | L1 (Cauchy projections) | CoverType, `k = 8, w = 4r` |
//! | [`PStableL2`] | L2 (Gaussian projections) | Corel, `k = 7, w = 2r` |
//! | [`MinHash`] | Jaccard | extension (cited as Broder et al.) |
//!
//! Every family implements [`LshFamily`]: it samples *g-functions*
//! (concatenations of `k` atomic hashes, Definition 2 of Indyk–Motwani)
//! and exposes the analytic single-atom collision probability `p(r)`
//! needed by the paper's parameter rule
//! `k = ⌈log(1 − δ^{1/L}) / log p₁⌉` (implemented in [`params`]).
//!
//! All sampling is deterministic given a `u64` seed.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitsampling;
pub mod family;
pub mod minhash;
pub mod params;
pub mod pstable;
pub mod sampling;
pub mod simhash;

pub use bitsampling::BitSampling;
pub use family::{GFunction, LshFamily};
pub use minhash::MinHash;
pub use params::{
    k_paper, k_safe, optimize_k_l, recall_lower_bound, PaperDataset, PaperParams, TunedParams,
};
pub use pstable::{PStableL1, PStableL2};
pub use simhash::{simhash_fingerprints, SimHash};
