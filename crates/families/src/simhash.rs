//! SimHash — sign random projections for cosine distance (Charikar,
//! STOC'02).
//!
//! An atomic hash draws a Gaussian vector `a` and returns
//! `sign(a · x)`. For two vectors at angle `θ` the collision probability
//! is exactly `1 − θ/π`. The paper uses SimHash twice:
//!
//! * directly, for the Webspam cosine-distance experiment, and
//! * as a compressor, turning each MNIST image into a 64-bit fingerprint
//!   that is then indexed with bit sampling in Hamming space
//!   ([`simhash_fingerprints`]).
//!
//! Radius convention: `r` is the **cosine distance** `1 − cos θ`, the
//! quantity on the x-axis of Figure 2b (`r ∈ [0.05, 0.1]`), so
//! `p(r) = 1 − arccos(1 − r)/π`.

use rand::rngs::StdRng;

use crate::family::{GFunction, LshFamily};
use crate::sampling;
use hlsh_vec::kernels;
use hlsh_vec::{BinaryDataset, DenseDataset};

/// The SimHash family over dense points of dimension `dim`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimHash {
    dim: usize,
}

impl SimHash {
    /// Creates the family for `dim`-dimensional dense points.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self { dim }
    }

    /// Point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// A sampled g-function: `k ≤ 64` Gaussian directions stored as one
/// flat row-major matrix; key bit `j` is `sign(a_j · x)`.
#[derive(Clone, Debug)]
pub struct SimHashGFn {
    dim: usize,
    // k rows of length dim.
    planes: Vec<f32>,
}

impl SimHashGFn {
    /// The projection matrix rows (for the multi-probe extension, where
    /// flipping key bit `j` probes across hyperplane `j`).
    pub fn plane(&self, j: usize) -> &[f32] {
        &self.planes[j * self.dim..(j + 1) * self.dim]
    }

    /// Signed margin `a_j · x` of point `x` against hyperplane `j`;
    /// multi-probe flips the bits with the smallest `|margin|` first.
    /// Same chunked kernel as `bucket_key`, so sign and key bit agree.
    pub fn margin(&self, j: usize, p: &[f32]) -> f64 {
        kernels::dot(self.plane(j), p)
    }

    /// Reassembles a g-function from its sampled hyperplanes (the
    /// snapshot loader's entry point — persisted snapshots store the
    /// plane matrix verbatim so loading never re-runs the sampler).
    ///
    /// # Panics
    /// Panics if `dim == 0`, `planes` is not a non-empty `k × dim`
    /// matrix, or `k > 64`.
    pub fn from_parts(dim: usize, planes: Vec<f32>) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert!(
            !planes.is_empty() && planes.len().is_multiple_of(dim),
            "planes must be a non-empty k × dim matrix"
        );
        assert!(planes.len() / dim <= 64, "SimHash keys are capped at 64 bits");
        Self { dim, planes }
    }

    /// The sampled parts `(dim, planes)`: the row-major `[k × dim]`
    /// hyperplane matrix. Inverse of [`from_parts`](Self::from_parts).
    pub fn parts(&self) -> (usize, &[f32]) {
        (self.dim, &self.planes)
    }
}

impl GFunction<[f32]> for SimHashGFn {
    #[inline]
    fn bucket_key(&self, p: &[f32]) -> u64 {
        debug_assert_eq!(p.len(), self.dim);
        // All k sign bits from one matrix–vector kernel pass.
        let mut key = 0u64;
        kernels::matvec_each(&self.planes, self.dim, p, |j, proj| {
            if proj >= 0.0 {
                key |= 1u64 << j;
            }
        });
        key
    }

    fn k(&self) -> usize {
        self.planes.len() / self.dim
    }

    /// All `B × k` sign bits from one point-blocked
    /// [`matmat`](hlsh_vec::kernels::matmat) pass; bit-identical keys
    /// to the per-point loop.
    fn bucket_keys_block<S>(&self, data: &S, start: usize, out: &mut [u64])
    where
        S: hlsh_vec::PointSet<Point = [f32]> + ?Sized,
    {
        let k = GFunction::k(self);
        let Some(block) = data.dense_block(start, out.len()) else {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = self.bucket_key(data.point(start + i));
            }
            return;
        };
        let mut proj = vec![0.0f64; out.len() * k];
        kernels::matmat(&self.planes, self.dim, block, &mut proj);
        for (pi, slot) in out.iter_mut().enumerate() {
            let mut key = 0u64;
            for (j, &p) in proj[pi * k..(pi + 1) * k].iter().enumerate() {
                if p >= 0.0 {
                    key |= 1u64 << j;
                }
            }
            *slot = key;
        }
    }
}

impl LshFamily<[f32]> for SimHash {
    type GFn = SimHashGFn;

    fn sample(&self, k: usize, rng: &mut StdRng) -> SimHashGFn {
        assert!(k > 0, "k must be positive");
        assert!(k <= 64, "SimHash keys are capped at 64 bits, got k = {k}");
        let mut planes = Vec::with_capacity(k * self.dim);
        for _ in 0..k {
            planes.extend(sampling::normal_vector(rng, self.dim));
        }
        SimHashGFn { dim: self.dim, planes }
    }

    /// `p(r) = 1 − arccos(1 − r)/π` where `r = 1 − cos θ` is the cosine
    /// distance. Exact for Gaussian projections.
    fn collision_prob(&self, r: f64) -> f64 {
        let cos = (1.0 - r).clamp(-1.0, 1.0);
        1.0 - cos.acos() / std::f64::consts::PI
    }

    fn name(&self) -> &'static str {
        "SimHash"
    }
}

/// Compresses every row of a dense data set into a `bits`-bit SimHash
/// fingerprint (the paper's MNIST preprocessing: "we applied SimHash to
/// obtain 64-bit fingerprint vectors").
///
/// Cosine-similar points map to fingerprints at small Hamming distance:
/// each bit disagrees with probability `θ/π`, so
/// `E[hamming] = bits · θ/π`.
///
/// # Panics
/// Panics if `bits == 0` or `bits > 64`.
pub fn simhash_fingerprints(data: &DenseDataset, bits: usize, seed: u64) -> BinaryDataset {
    assert!(bits > 0 && bits <= 64, "fingerprint width must be in 1..=64");
    let family = SimHash::new(data.dim());
    let mut rng = sampling::rng_stream(seed, 0x5134_1234);
    let g = family.sample(bits, &mut rng);
    let fps: Vec<u64> = data.rows().map(|row| g.bucket_key(row)).collect();
    BinaryDataset::from_fingerprints(&fps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::rng_stream;

    #[test]
    fn collision_prob_endpoints() {
        let f = SimHash::new(10);
        assert!((f.collision_prob(0.0) - 1.0).abs() < 1e-12);
        // r = 1 → cos = 0 → θ = π/2 → p = 1/2.
        assert!((f.collision_prob(1.0) - 0.5).abs() < 1e-12);
        // r = 2 → antipodal → p = 0.
        assert!(f.collision_prob(2.0).abs() < 1e-12);
    }

    #[test]
    fn collision_prob_is_monotone() {
        let f = SimHash::new(10);
        let mut prev = 1.0;
        let mut r = 0.0;
        while r <= 2.0 {
            let p = f.collision_prob(r);
            assert!(p <= prev + 1e-12);
            prev = p;
            r += 0.05;
        }
    }

    #[test]
    fn key_is_deterministic() {
        let f = SimHash::new(8);
        let g = f.sample(16, &mut rng_stream(3, 0));
        let x = [0.5f32, -1.0, 2.0, 0.0, 1.0, 1.0, -0.5, 0.25];
        assert_eq!(g.bucket_key(&x), g.bucket_key(&x));
        assert_eq!(g.k(), 16);
    }

    #[test]
    fn scaling_invariance() {
        // SimHash depends only on direction: scaling a vector by a
        // positive constant must not change its key.
        let f = SimHash::new(6);
        let g = f.sample(32, &mut rng_stream(4, 0));
        let x = [0.3f32, -0.7, 1.1, 0.0, -2.0, 0.5];
        let x2: Vec<f32> = x.iter().map(|v| v * 37.0).collect();
        assert_eq!(g.bucket_key(&x), g.bucket_key(&x2));
    }

    #[test]
    fn empirical_collision_rate_matches_theory() {
        // Construct two unit vectors at a known angle in a 2-plane.
        let dim = 16;
        let r_cos = 0.08; // cosine distance, Webspam regime
        let cos: f64 = 1.0 - r_cos;
        let sin = (1.0 - cos * cos).sqrt();
        let mut a = vec![0.0f32; dim];
        let mut b = vec![0.0f32; dim];
        a[0] = 1.0;
        b[0] = cos as f32;
        b[1] = sin as f32;
        let f = SimHash::new(dim);
        let mut rng = rng_stream(77, 0);
        let trials = 3_000;
        let mut collisions = 0u32;
        for _ in 0..trials {
            let g = f.sample(1, &mut rng);
            if g.bucket_key(&a) == g.bucket_key(&b) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        let theory = f.collision_prob(r_cos);
        assert!((rate - theory).abs() < 0.025, "rate {rate} vs theory {theory}");
    }

    #[test]
    fn fingerprints_preserve_similarity_ordering() {
        // Near pair and far pair: near pair should get smaller expected
        // fingerprint Hamming distance.
        let dim = 32;
        let mut data = DenseDataset::new(dim);
        let base: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut near = base.clone();
        near[0] += 0.05;
        let far: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.91).cos()).collect();
        data.push(&base);
        data.push(&near);
        data.push(&far);
        let fps = simhash_fingerprints(&data, 64, 99);
        let d_near = hlsh_vec::binary::hamming_words(fps.row(0), fps.row(1));
        let d_far = hlsh_vec::binary::hamming_words(fps.row(0), fps.row(2));
        assert!(d_near < d_far, "near {d_near} vs far {d_far}");
        assert_eq!(fps.len(), 3);
        assert_eq!(fps.bits(), 64);
    }

    #[test]
    fn blocked_keys_match_per_point_keys_bitwise() {
        use hlsh_vec::PointSet;
        let dim = 19;
        let n = 10;
        let data = DenseDataset::from_rows(
            dim,
            (0..n)
                .map(|i| (0..dim).map(|j| ((i * dim + j) as f32 * 0.41).cos()).collect::<Vec<_>>()),
        );
        for k in [1usize, 16, 64] {
            let g = SimHash::new(dim).sample(k, &mut rng_stream(6, 0));
            let mut blocked = vec![0u64; n];
            g.bucket_keys_block(&data, 0, &mut blocked);
            for (i, &key) in blocked.iter().enumerate() {
                assert_eq!(key, g.bucket_key(data.point(i)), "k={k} i={i}");
            }
        }
    }

    #[test]
    fn margin_sign_matches_key_bit() {
        let f = SimHash::new(4);
        let g = f.sample(8, &mut rng_stream(10, 0));
        let x = [1.0f32, -2.0, 0.5, 3.0];
        let key = g.bucket_key(&x);
        for j in 0..8 {
            let bit = (key >> j) & 1 == 1;
            assert_eq!(bit, g.margin(j, &x) >= 0.0);
        }
    }
}
