//! Scoped-thread parallel map over an index range.
//!
//! Every embarrassingly-parallel fan-out in the workspace has the same
//! shape — shard `0..n` into contiguous chunks, give each worker its
//! own scratch state, write results into pre-allocated slots so the
//! output keeps input order. [`par_map_with`] is that scaffold, shared
//! by the batch query engines and the exact ground-truth scans so the
//! chunking/thread-count policy lives in exactly one place.

/// Maps `f` over `0..n`, sharded across scoped threads, returning
/// results in index order.
///
/// `make_state` builds one per-worker scratch value (a reusable query
/// engine, `()` for pure functions); it runs on the calling thread,
/// once per worker. `threads` of `None` uses all available cores; the
/// count is clamped to `[1, n]`, and a single worker runs inline
/// without spawning. Results are byte-identical to a sequential
/// `(0..n).map(..)` loop whenever `f` is deterministic per index.
pub fn par_map_with<T, S, G, F>(n: usize, threads: Option<usize>, mut make_state: G, f: F) -> Vec<T>
where
    T: Send,
    S: Send,
    G: FnMut() -> S,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads
        .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1))
        .clamp(1, n);

    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    if threads == 1 {
        let mut state = make_state();
        for (i, slot) in results.iter_mut().enumerate() {
            *slot = Some(f(&mut state, i));
        }
    } else {
        let chunk = n.div_ceil(threads);
        let f = &f;
        std::thread::scope(|scope| {
            for (ci, slots) in results.chunks_mut(chunk).enumerate() {
                let mut state = make_state();
                scope.spawn(move || {
                    for (off, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(f(&mut state, ci * chunk + off));
                    }
                });
            }
        });
    }
    results.into_iter().map(|r| r.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        for threads in [None, Some(1), Some(3), Some(16)] {
            let out = par_map_with(37, threads, || (), |_, i| i * 2);
            assert_eq!(out, (0..37).map(|i| i * 2).collect::<Vec<_>>(), "{threads:?}");
        }
    }

    #[test]
    fn empty_range() {
        let out: Vec<usize> = par_map_with(0, None, || (), |_, i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn one_state_per_worker() {
        // Sequential: a single state sees every index.
        let out = par_map_with(
            10,
            Some(1),
            || 0usize,
            |count, _| {
                *count += 1;
                *count
            },
        );
        assert_eq!(out.last(), Some(&10));
        // Two workers: each chunk restarts its own counter.
        let out = par_map_with(
            10,
            Some(2),
            || 0usize,
            |count, _| {
                *count += 1;
                *count
            },
        );
        assert_eq!(out[..5], [1, 2, 3, 4, 5]);
        assert_eq!(out[5..], [1, 2, 3, 4, 5]);
    }
}
