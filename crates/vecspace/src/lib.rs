//! Vector substrate for the hybrid-LSH reproduction.
//!
//! This crate provides the point types, distance metrics and dataset
//! containers that every other crate in the workspace builds on:
//!
//! * [`DenseDataset`] — row-major `f32` matrices for real-valued data
//!   (Corel, CoverType, Webspam analogs),
//! * [`BinaryDataset`] / [`BinaryVec`] — packed bit vectors for Hamming
//!   space (MNIST 64-bit SimHash fingerprints),
//! * the [`Distance`] trait with [`L1`], [`L2`], [`Cosine`], [`Hamming`]
//!   and [`Jaccard`] implementations, including batched
//!   [`verify_many`](Distance::verify_many) /
//!   [`scan_within`](Distance::scan_within) hooks backed by the
//!   chunked [`kernels`] on dense data,
//! * [`kernels`] — throughput-oriented chunked distance, projection
//!   (matrix–vector) and one-to-many verification kernels over the
//!   scalar references in [`dense`],
//! * numeric special functions ([`stats::erf`], [`stats::normal_cdf`])
//!   needed by the analytic p-stable collision probabilities,
//! * plain-text parsers for libsvm and dense whitespace formats so the
//!   paper's original data sets can be dropped in unchanged.
//!
//! Everything is dependency-free, deterministic and `unsafe`-free.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod binary;
pub mod dataset;
pub mod dense;
pub mod io;
pub mod kernels;
pub mod metric;
pub mod parallel;
pub mod section;
pub mod stats;

pub use binary::{BinaryDataset, BinaryVec};
pub use dataset::{GrowablePointSet, PointId, PointSet, SubsetPointSet};
pub use dense::DenseDataset;
pub use metric::{Cosine, Distance, Hamming, Jaccard, MetricKind, UnitCosine, L1, L2};
pub use section::{Section, SliceBacking};
