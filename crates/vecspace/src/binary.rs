//! Packed binary vectors for Hamming space.
//!
//! The MNIST experiment in the paper first compresses each image into a
//! 64-bit SimHash fingerprint and then searches in Hamming space with bit
//! sampling. [`BinaryVec`] stores an arbitrary number of bits packed into
//! `u64` words; [`BinaryDataset`] is the row-major collection.

use crate::dataset::PointSet;

/// A fixed-width bit vector packed into `u64` words (little-endian bit
/// order: bit `i` lives in word `i / 64`, position `i % 64`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BinaryVec {
    bits: usize,
    words: Vec<u64>,
}

impl BinaryVec {
    /// An all-zero vector of `bits` bits.
    ///
    /// # Panics
    /// Panics if `bits == 0`.
    pub fn zeros(bits: usize) -> Self {
        assert!(bits > 0, "bit width must be positive");
        Self { bits, words: vec![0; bits.div_ceil(64)] }
    }

    /// Wraps a single `u64` as a 64-bit vector (SimHash fingerprints).
    pub fn from_u64(word: u64) -> Self {
        Self { bits: 64, words: vec![word] }
    }

    /// Builds from a boolean slice.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut v = Self::zeros(bools.len().max(1));
        if bools.is_empty() {
            return Self { bits: 0, words: vec![] };
        }
        for (i, &b) in bools.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Number of bits.
    #[inline]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.bits()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.bits, "bit index {i} out of range {}", self.bits);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.bits()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.bits, "bit index {i} out of range {}", self.bits);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`, returning the new value.
    pub fn flip(&mut self, i: usize) -> bool {
        let v = !self.get(i);
        self.set(i, v);
        v
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Underlying packed words.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Hamming distance between two packed word slices of equal length.
#[inline]
pub fn hamming_words(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
}

/// Hamming distance between two [`BinaryVec`]s.
///
/// # Panics
/// Panics if the bit widths differ.
#[inline]
pub fn hamming(a: &BinaryVec, b: &BinaryVec) -> u32 {
    assert_eq!(a.bits, b.bits, "bit width mismatch");
    hamming_words(&a.words, &b.words)
}

/// Jaccard distance `1 − |a ∩ b| / |a ∪ b|` over set-bit sets. Two empty
/// sets have distance `0`.
pub fn jaccard_distance(a: &BinaryVec, b: &BinaryVec) -> f64 {
    assert_eq!(a.bits, b.bits, "bit width mismatch");
    let mut inter = 0u64;
    let mut union = 0u64;
    for (x, y) in a.words.iter().zip(&b.words) {
        inter += (x & y).count_ones() as u64;
        union += (x | y).count_ones() as u64;
    }
    if union == 0 {
        0.0
    } else {
        1.0 - inter as f64 / union as f64
    }
}

/// A data set of equal-width binary vectors stored as one flat word
/// buffer, analogous to [`crate::DenseDataset`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BinaryDataset {
    bits: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BinaryDataset {
    /// Creates an empty data set of `bits`-wide vectors.
    ///
    /// # Panics
    /// Panics if `bits == 0`.
    pub fn new(bits: usize) -> Self {
        assert!(bits > 0, "bit width must be positive");
        Self { bits, words_per_row: bits.div_ceil(64), data: Vec::new() }
    }

    /// Builds a 64-bit fingerprint data set from raw `u64`s.
    pub fn from_fingerprints(fps: &[u64]) -> Self {
        Self { bits: 64, words_per_row: 1, data: fps.to_vec() }
    }

    /// Appends one vector.
    ///
    /// # Panics
    /// Panics if the bit width differs.
    pub fn push(&mut self, v: &BinaryVec) {
        assert_eq!(v.bits(), self.bits, "bit width mismatch");
        self.data.extend_from_slice(v.words());
    }

    /// Number of vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.words_per_row).unwrap_or(0)
    }

    /// Whether the data set holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bit width of every vector.
    #[inline]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Borrow row `i` as packed words.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        let start = i * self.words_per_row;
        &self.data[start..start + self.words_per_row]
    }

    /// Iterator over all rows (packed words).
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[u64]> + '_ {
        self.data.chunks_exact(self.words_per_row.max(1))
    }

    /// Removes the rows with the given (sorted, unique) indexes and
    /// returns them as a new data set, preserving order.
    ///
    /// # Panics
    /// Panics if indexes are not strictly increasing or out of bounds.
    pub fn split_off_rows(&mut self, indexes: &[usize]) -> BinaryDataset {
        for w in indexes.windows(2) {
            assert!(w[0] < w[1], "indexes must be strictly increasing");
        }
        if let Some(&last) = indexes.last() {
            assert!(last < self.len(), "index {last} out of bounds");
        }
        let wpr = self.words_per_row;
        let mut removed = BinaryDataset::new(self.bits);
        let mut kept = Vec::with_capacity(self.data.len() - indexes.len() * wpr);
        let mut next = indexes.iter().copied().peekable();
        for (i, row) in self.data.chunks_exact(wpr).enumerate() {
            if next.peek() == Some(&i) {
                removed.data.extend_from_slice(row);
                next.next();
            } else {
                kept.extend_from_slice(row);
            }
        }
        self.data = kept;
        removed
    }
}

impl crate::dataset::GrowablePointSet for BinaryDataset {
    /// Appends packed words directly (the word count must match the
    /// data set's row width).
    #[inline]
    fn push_point(&mut self, p: &[u64]) {
        assert_eq!(p.len(), self.words_per_row, "word-count mismatch");
        self.data.extend_from_slice(p);
    }
}

impl crate::dataset::SubsetPointSet for BinaryDataset {
    fn subset(&self, ids: &[crate::dataset::PointId]) -> Self {
        let wpr = self.words_per_row;
        let mut data = Vec::with_capacity(ids.len() * wpr);
        for &id in ids {
            data.extend_from_slice(self.row(id as usize));
        }
        Self { bits: self.bits, words_per_row: wpr, data }
    }
}

impl PointSet for BinaryDataset {
    type Point = [u64];

    #[inline]
    fn len(&self) -> usize {
        BinaryDataset::len(self)
    }

    #[inline]
    fn point(&self, i: usize) -> &[u64] {
        self.row(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_get_set_flip() {
        let mut v = BinaryVec::zeros(100);
        assert_eq!(v.bits(), 100);
        assert!(!v.get(63));
        v.set(63, true);
        v.set(64, true);
        assert!(v.get(63));
        assert!(v.get(64));
        assert_eq!(v.count_ones(), 2);
        assert!(!v.flip(63));
        assert_eq!(v.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BinaryVec::zeros(10);
        let _ = v.get(10);
    }

    #[test]
    fn from_u64_round_trip() {
        let v = BinaryVec::from_u64(0b1011);
        assert!(v.get(0) && v.get(1) && !v.get(2) && v.get(3));
        assert_eq!(v.words(), &[0b1011]);
    }

    #[test]
    fn from_bools_matches_get() {
        let bools = [true, false, true, true, false];
        let v = BinaryVec::from_bools(&bools);
        for (i, &b) in bools.iter().enumerate() {
            assert_eq!(v.get(i), b);
        }
    }

    #[test]
    fn hamming_counts_differing_bits() {
        let a = BinaryVec::from_u64(0b1100);
        let b = BinaryVec::from_u64(0b1010);
        assert_eq!(hamming(&a, &b), 2);
        assert_eq!(hamming(&a, &a), 0);
    }

    #[test]
    fn hamming_multi_word() {
        let mut a = BinaryVec::zeros(130);
        let mut b = BinaryVec::zeros(130);
        a.set(0, true);
        a.set(64, true);
        a.set(129, true);
        b.set(129, true);
        assert_eq!(hamming(&a, &b), 2);
    }

    #[test]
    fn jaccard_basics() {
        let a = BinaryVec::from_u64(0b0111);
        let b = BinaryVec::from_u64(0b1110);
        // inter = 2 (bits 1,2), union = 4
        assert!((jaccard_distance(&a, &b) - 0.5).abs() < 1e-12);
        let z = BinaryVec::from_u64(0);
        assert_eq!(jaccard_distance(&z, &z), 0.0);
        assert_eq!(jaccard_distance(&a, &a), 0.0);
    }

    #[test]
    fn dataset_push_row_round_trip() {
        let mut ds = BinaryDataset::new(64);
        ds.push(&BinaryVec::from_u64(7));
        ds.push(&BinaryVec::from_u64(9));
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.row(0), &[7]);
        assert_eq!(ds.row(1), &[9]);
        assert_eq!(ds.rows().count(), 2);
    }

    #[test]
    fn dataset_from_fingerprints() {
        let ds = BinaryDataset::from_fingerprints(&[1, 2, 3]);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.bits(), 64);
        assert_eq!(ds.row(2), &[3]);
    }

    #[test]
    fn dataset_split_off_rows() {
        let mut ds = BinaryDataset::from_fingerprints(&[10, 11, 12, 13]);
        let removed = ds.split_off_rows(&[1, 3]);
        assert_eq!(removed.len(), 2);
        assert_eq!(removed.row(0), &[11]);
        assert_eq!(removed.row(1), &[13]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.row(0), &[10]);
        assert_eq!(ds.row(1), &[12]);
    }

    #[test]
    fn hamming_words_zero_on_equal() {
        assert_eq!(hamming_words(&[u64::MAX, 0], &[u64::MAX, 0]), 0);
        assert_eq!(hamming_words(&[u64::MAX], &[0]), 64);
    }
}
