//! Distance metrics as zero-sized strategy types.
//!
//! The rNNR problem (Definition 1 in the paper) is parameterised by an
//! arbitrary distance function `f`. We model `f` as the [`Distance`]
//! trait so the index is generic over both metric and point
//! representation, mirroring the paper's claim that the hybrid strategy
//! works "in an arbitrary high-dimensional space and distance measure
//! that allows LSH".

use crate::binary;
use crate::dataset::{PointId, PointSet};
use crate::kernels;

/// A distance function over borrowed points of type `P`.
pub trait Distance<P: ?Sized>: Clone + Send + Sync {
    /// Computes the distance between two points.
    fn distance(&self, a: &P, b: &P) -> f64;

    /// A short human-readable name ("L2", "cosine", ...).
    fn name(&self) -> &'static str;

    /// Batched candidate verification (step S3 of the query pipeline):
    /// appends to `out` every id in `ids` whose point lies within `r`
    /// of `q`, preserving the order of `ids`.
    ///
    /// The default is the per-id [`distance`](Self::distance) loop;
    /// dense metrics override it to score the whole candidate list with
    /// a one-to-many kernel straight out of the dataset's flat storage
    /// (see [`crate::kernels`]). Overrides must preserve ordering and
    /// may differ from the default only within the kernel accuracy
    /// envelope documented in [`crate::kernels`].
    fn verify_many<S>(&self, data: &S, ids: &[PointId], q: &P, r: f64, out: &mut Vec<PointId>)
    where
        S: PointSet<Point = P> + ?Sized,
        Self: Sized,
    {
        verify_scalar(self, data, ids, q, r, out);
    }

    /// Full linear scan: appends every id in `data` within `r` of `q`,
    /// in ascending id order. Same contract and kernel dispatch as
    /// [`verify_many`](Self::verify_many), walking all points.
    fn scan_within<S>(&self, data: &S, q: &P, r: f64, out: &mut Vec<PointId>)
    where
        S: PointSet<Point = P> + ?Sized,
        Self: Sized,
    {
        scan_scalar(self, data, q, r, out);
    }

    /// Distance-returning batched verification: like
    /// [`verify_many`](Self::verify_many) but appends `(id, distance)`
    /// pairs, emitting the distance the filter already computed. The
    /// accepted id sequence is identical to `verify_many` and each
    /// distance is bit-identical to `self.distance(data.point(id), q)`,
    /// so rankers (the top-k engine) can consume verification output
    /// directly instead of recomputing every reported neighbor's
    /// distance per id.
    fn verify_many_dist<S>(
        &self,
        data: &S,
        ids: &[PointId],
        q: &P,
        r: f64,
        out: &mut Vec<(PointId, f64)>,
    ) where
        S: PointSet<Point = P> + ?Sized,
        Self: Sized,
    {
        verify_scalar_dist(self, data, ids, q, r, out);
    }

    /// Distance-returning full scan: like
    /// [`scan_within`](Self::scan_within) but appends `(id, distance)`
    /// pairs in ascending id order, with the same bit-identity contract
    /// as [`verify_many_dist`](Self::verify_many_dist). Passing
    /// `r = f64::INFINITY` turns this into a full distance table in one
    /// kernel pass — the top-k exact fallback's shape.
    fn scan_within_dist<S>(&self, data: &S, q: &P, r: f64, out: &mut Vec<(PointId, f64)>)
    where
        S: PointSet<Point = P> + ?Sized,
        Self: Sized,
    {
        scan_scalar_dist(self, data, q, r, out);
    }
}

/// Enumeration of the metrics used in the paper's evaluation, for
/// configuration and reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// Manhattan distance (CoverType experiment).
    L1,
    /// Euclidean distance (Corel experiment).
    L2,
    /// Cosine distance `1 − cos` (Webspam experiment).
    Cosine,
    /// Hamming distance on packed bits (MNIST experiment).
    Hamming,
    /// Jaccard distance on set bits (MinHash extension).
    Jaccard,
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MetricKind::L1 => "L1",
            MetricKind::L2 => "L2",
            MetricKind::Cosine => "cosine",
            MetricKind::Hamming => "Hamming",
            MetricKind::Jaccard => "Jaccard",
        };
        f.write_str(s)
    }
}

/// The canonical per-id verification loop: backs the trait's provided
/// `verify_many` default, the dense metrics' non-dense fallback arms (a
/// metric override cannot call the default it replaced), and the query
/// engine's forced-scalar mode, so "scalar baseline" means one loop
/// everywhere.
pub fn verify_scalar<P, S, D>(
    d: &D,
    data: &S,
    ids: &[PointId],
    q: &P,
    r: f64,
    out: &mut Vec<PointId>,
) where
    P: ?Sized,
    S: PointSet<Point = P> + ?Sized,
    D: Distance<P>,
{
    for &id in ids {
        if d.distance(data.point(id as usize), q) <= r {
            out.push(id);
        }
    }
}

/// The canonical full-scan loop backing the trait's provided
/// `scan_within` default; see [`verify_scalar`].
pub fn scan_scalar<P, S, D>(d: &D, data: &S, q: &P, r: f64, out: &mut Vec<PointId>)
where
    P: ?Sized,
    S: PointSet<Point = P> + ?Sized,
    D: Distance<P>,
{
    for id in 0..data.len() {
        if d.distance(data.point(id), q) <= r {
            out.push(id as PointId);
        }
    }
}

/// Distance-returning per-id verification loop backing the trait's
/// provided `verify_many_dist` default; see [`verify_scalar`].
pub fn verify_scalar_dist<P, S, D>(
    d: &D,
    data: &S,
    ids: &[PointId],
    q: &P,
    r: f64,
    out: &mut Vec<(PointId, f64)>,
) where
    P: ?Sized,
    S: PointSet<Point = P> + ?Sized,
    D: Distance<P>,
{
    for &id in ids {
        let dist = d.distance(data.point(id as usize), q);
        if dist <= r {
            out.push((id, dist));
        }
    }
}

/// Distance-returning full-scan loop backing the trait's provided
/// `scan_within_dist` default; see [`verify_scalar`].
pub fn scan_scalar_dist<P, S, D>(d: &D, data: &S, q: &P, r: f64, out: &mut Vec<(PointId, f64)>)
where
    P: ?Sized,
    S: PointSet<Point = P> + ?Sized,
    D: Distance<P>,
{
    for id in 0..data.len() {
        let dist = d.distance(data.point(id), q);
        if dist <= r {
            out.push((id as PointId, dist));
        }
    }
}

/// Per-row dense filter over listed candidates for metrics without a
/// dedicated one-to-many kernel: accepts id iff `row_dist(row) <= r`,
/// where `row_dist` must compute exactly what the metric's
/// `distance()` would on the same row (shared by the cosine metrics).
fn verify_dense_rows(
    flat: &[f32],
    dim: usize,
    ids: &[PointId],
    r: f64,
    row_dist: impl Fn(&[f32]) -> f64,
    out: &mut Vec<PointId>,
) {
    for &id in ids {
        let start = id as usize * dim;
        if row_dist(&flat[start..start + dim]) <= r {
            out.push(id);
        }
    }
}

/// Full-scan counterpart of [`verify_dense_rows`], in row order.
fn scan_dense_rows(
    flat: &[f32],
    dim: usize,
    r: f64,
    row_dist: impl Fn(&[f32]) -> f64,
    out: &mut Vec<PointId>,
) {
    for (id, row) in flat.chunks_exact(dim).enumerate() {
        if row_dist(row) <= r {
            out.push(id as PointId);
        }
    }
}

/// Distance-returning counterpart of [`verify_dense_rows`].
fn verify_dense_rows_dist(
    flat: &[f32],
    dim: usize,
    ids: &[PointId],
    r: f64,
    row_dist: impl Fn(&[f32]) -> f64,
    out: &mut Vec<(PointId, f64)>,
) {
    for &id in ids {
        let start = id as usize * dim;
        let dist = row_dist(&flat[start..start + dim]);
        if dist <= r {
            out.push((id, dist));
        }
    }
}

/// Distance-returning counterpart of [`scan_dense_rows`].
fn scan_dense_rows_dist(
    flat: &[f32],
    dim: usize,
    r: f64,
    row_dist: impl Fn(&[f32]) -> f64,
    out: &mut Vec<(PointId, f64)>,
) {
    for (id, row) in flat.chunks_exact(dim).enumerate() {
        let dist = row_dist(row);
        if dist <= r {
            out.push((id as PointId, dist));
        }
    }
}

/// Manhattan distance over dense vectors.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct L1;

impl Distance<[f32]> for L1 {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f64 {
        kernels::l1(a, b)
    }

    fn name(&self) -> &'static str {
        "L1"
    }

    fn verify_many<S>(&self, data: &S, ids: &[PointId], q: &[f32], r: f64, out: &mut Vec<PointId>)
    where
        S: PointSet<Point = [f32]> + ?Sized,
    {
        match data.dense_view() {
            Some((flat, dim)) => kernels::l1_one_to_many(flat, dim, ids, q, r, out),
            None => verify_scalar(self, data, ids, q, r, out),
        }
    }

    fn scan_within<S>(&self, data: &S, q: &[f32], r: f64, out: &mut Vec<PointId>)
    where
        S: PointSet<Point = [f32]> + ?Sized,
    {
        match data.dense_view() {
            Some((flat, dim)) => kernels::l1_scan(flat, dim, q, r, out),
            None => scan_scalar(self, data, q, r, out),
        }
    }

    fn verify_many_dist<S>(
        &self,
        data: &S,
        ids: &[PointId],
        q: &[f32],
        r: f64,
        out: &mut Vec<(PointId, f64)>,
    ) where
        S: PointSet<Point = [f32]> + ?Sized,
    {
        match data.dense_view() {
            Some((flat, dim)) => kernels::l1_one_to_many_dist(flat, dim, ids, q, r, out),
            None => verify_scalar_dist(self, data, ids, q, r, out),
        }
    }

    fn scan_within_dist<S>(&self, data: &S, q: &[f32], r: f64, out: &mut Vec<(PointId, f64)>)
    where
        S: PointSet<Point = [f32]> + ?Sized,
    {
        match data.dense_view() {
            Some((flat, dim)) => kernels::l1_scan_dist(flat, dim, q, r, out),
            None => scan_scalar_dist(self, data, q, r, out),
        }
    }
}

/// Euclidean distance over dense vectors.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct L2;

impl Distance<[f32]> for L2 {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f64 {
        kernels::l2(a, b)
    }

    fn name(&self) -> &'static str {
        "L2"
    }

    // The unsquared-radius kernels share the scalar path's exact
    // predicate (`sqrt(l2_sq) <= r` on identical floats), so Kernel and
    // Scalar verification can never disagree, even at the boundary or
    // for r < 0.
    fn verify_many<S>(&self, data: &S, ids: &[PointId], q: &[f32], r: f64, out: &mut Vec<PointId>)
    where
        S: PointSet<Point = [f32]> + ?Sized,
    {
        match data.dense_view() {
            Some((flat, dim)) => kernels::l2_one_to_many(flat, dim, ids, q, r, out),
            None => verify_scalar(self, data, ids, q, r, out),
        }
    }

    fn scan_within<S>(&self, data: &S, q: &[f32], r: f64, out: &mut Vec<PointId>)
    where
        S: PointSet<Point = [f32]> + ?Sized,
    {
        match data.dense_view() {
            Some((flat, dim)) => kernels::l2_scan(flat, dim, q, r, out),
            None => scan_scalar(self, data, q, r, out),
        }
    }

    fn verify_many_dist<S>(
        &self,
        data: &S,
        ids: &[PointId],
        q: &[f32],
        r: f64,
        out: &mut Vec<(PointId, f64)>,
    ) where
        S: PointSet<Point = [f32]> + ?Sized,
    {
        match data.dense_view() {
            Some((flat, dim)) => kernels::l2_one_to_many_dist(flat, dim, ids, q, r, out),
            None => verify_scalar_dist(self, data, ids, q, r, out),
        }
    }

    fn scan_within_dist<S>(&self, data: &S, q: &[f32], r: f64, out: &mut Vec<(PointId, f64)>)
    where
        S: PointSet<Point = [f32]> + ?Sized,
    {
        match data.dense_view() {
            Some((flat, dim)) => kernels::l2_scan_dist(flat, dim, q, r, out),
            None => scan_scalar_dist(self, data, q, r, out),
        }
    }
}

/// Cosine distance `1 − cos(a, b)` over dense vectors, range `[0, 2]`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cosine;

impl Distance<[f32]> for Cosine {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f64 {
        kernels::cosine_distance(a, b)
    }

    fn name(&self) -> &'static str {
        "cosine"
    }

    // Cosine needs both norms, so there is no monotone early-exit
    // bound; the win is the single-pass chunked kernel per row, with
    // the exact `distance()` predicate.
    fn verify_many<S>(&self, data: &S, ids: &[PointId], q: &[f32], r: f64, out: &mut Vec<PointId>)
    where
        S: PointSet<Point = [f32]> + ?Sized,
    {
        match data.dense_view() {
            Some((flat, dim)) => {
                verify_dense_rows(flat, dim, ids, r, |row| kernels::cosine_distance(row, q), out)
            }
            None => verify_scalar(self, data, ids, q, r, out),
        }
    }

    fn scan_within<S>(&self, data: &S, q: &[f32], r: f64, out: &mut Vec<PointId>)
    where
        S: PointSet<Point = [f32]> + ?Sized,
    {
        match data.dense_view() {
            Some((flat, dim)) => {
                scan_dense_rows(flat, dim, r, |row| kernels::cosine_distance(row, q), out)
            }
            None => scan_scalar(self, data, q, r, out),
        }
    }

    fn verify_many_dist<S>(
        &self,
        data: &S,
        ids: &[PointId],
        q: &[f32],
        r: f64,
        out: &mut Vec<(PointId, f64)>,
    ) where
        S: PointSet<Point = [f32]> + ?Sized,
    {
        match data.dense_view() {
            Some((flat, dim)) => verify_dense_rows_dist(
                flat,
                dim,
                ids,
                r,
                |row| kernels::cosine_distance(row, q),
                out,
            ),
            None => verify_scalar_dist(self, data, ids, q, r, out),
        }
    }

    fn scan_within_dist<S>(&self, data: &S, q: &[f32], r: f64, out: &mut Vec<(PointId, f64)>)
    where
        S: PointSet<Point = [f32]> + ?Sized,
    {
        match data.dense_view() {
            Some((flat, dim)) => {
                scan_dense_rows_dist(flat, dim, r, |row| kernels::cosine_distance(row, q), out)
            }
            None => scan_scalar_dist(self, data, q, r, out),
        }
    }
}

/// Cosine distance `1 − a·b` for vectors **already scaled to unit L2
/// norm** (one dot product instead of three passes).
///
/// This is the production-realistic cosine metric: normalise once at
/// ingest, then every distance is a single dot product. Results equal
/// [`Cosine`] on unit inputs; on non-unit inputs they differ — the
/// caller owns the invariant (e.g. via
/// [`crate::DenseDataset::normalize_l2`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnitCosine;

impl Distance<[f32]> for UnitCosine {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f64 {
        1.0 - kernels::dot(a, b)
    }

    fn name(&self) -> &'static str {
        "cosine(unit)"
    }

    fn verify_many<S>(&self, data: &S, ids: &[PointId], q: &[f32], r: f64, out: &mut Vec<PointId>)
    where
        S: PointSet<Point = [f32]> + ?Sized,
    {
        match data.dense_view() {
            Some((flat, dim)) => {
                verify_dense_rows(flat, dim, ids, r, |row| 1.0 - kernels::dot(row, q), out)
            }
            None => verify_scalar(self, data, ids, q, r, out),
        }
    }

    fn scan_within<S>(&self, data: &S, q: &[f32], r: f64, out: &mut Vec<PointId>)
    where
        S: PointSet<Point = [f32]> + ?Sized,
    {
        match data.dense_view() {
            Some((flat, dim)) => {
                scan_dense_rows(flat, dim, r, |row| 1.0 - kernels::dot(row, q), out)
            }
            None => scan_scalar(self, data, q, r, out),
        }
    }

    fn verify_many_dist<S>(
        &self,
        data: &S,
        ids: &[PointId],
        q: &[f32],
        r: f64,
        out: &mut Vec<(PointId, f64)>,
    ) where
        S: PointSet<Point = [f32]> + ?Sized,
    {
        match data.dense_view() {
            Some((flat, dim)) => {
                verify_dense_rows_dist(flat, dim, ids, r, |row| 1.0 - kernels::dot(row, q), out)
            }
            None => verify_scalar_dist(self, data, ids, q, r, out),
        }
    }

    fn scan_within_dist<S>(&self, data: &S, q: &[f32], r: f64, out: &mut Vec<(PointId, f64)>)
    where
        S: PointSet<Point = [f32]> + ?Sized,
    {
        match data.dense_view() {
            Some((flat, dim)) => {
                scan_dense_rows_dist(flat, dim, r, |row| 1.0 - kernels::dot(row, q), out)
            }
            None => scan_scalar_dist(self, data, q, r, out),
        }
    }
}

/// Hamming distance over packed binary vectors, returned as `f64` so all
/// metrics share one signature.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Hamming;

impl Distance<[u64]> for Hamming {
    #[inline]
    fn distance(&self, a: &[u64], b: &[u64]) -> f64 {
        binary::hamming_words(a, b) as f64
    }

    fn name(&self) -> &'static str {
        "Hamming"
    }
}

/// Jaccard distance over packed binary vectors interpreted as sets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Jaccard;

impl Distance<[u64]> for Jaccard {
    fn distance(&self, a: &[u64], b: &[u64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut inter = 0u64;
        let mut union = 0u64;
        for (x, y) in a.iter().zip(b) {
            inter += (x & y).count_ones() as u64;
            union += (x | y).count_ones() as u64;
        }
        if union == 0 {
            0.0
        } else {
            1.0 - inter as f64 / union as f64
        }
    }

    fn name(&self) -> &'static str {
        "Jaccard"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_l2_agree_with_free_functions() {
        let a = [0.0f32, 3.0];
        let b = [4.0f32, 0.0];
        assert_eq!(L1.distance(&a, &b), 7.0);
        assert_eq!(L2.distance(&a, &b), 5.0);
    }

    #[test]
    fn cosine_identity_is_zero() {
        let a = [0.3f32, 0.4, 0.5];
        assert!(Cosine.distance(&a, &a).abs() < 1e-9);
    }

    #[test]
    fn unit_cosine_matches_cosine_on_unit_vectors() {
        let a = [0.6f32, 0.8];
        let b = [1.0f32, 0.0];
        assert!((UnitCosine.distance(&a, &b) - Cosine.distance(&a, &b)).abs() < 1e-6);
        assert!(UnitCosine.distance(&a, &a).abs() < 1e-6);
        assert_eq!(UnitCosine.name(), "cosine(unit)");
    }

    #[test]
    fn hamming_on_words() {
        assert_eq!(Hamming.distance(&[0b111u64], &[0b010u64]), 2.0);
    }

    #[test]
    fn jaccard_on_words() {
        assert!((Jaccard.distance(&[0b0111u64], &[0b1110u64]) - 0.5).abs() < 1e-12);
        assert_eq!(Jaccard.distance(&[0u64], &[0u64]), 0.0);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(L1.name(), "L1");
        assert_eq!(L2.name(), "L2");
        assert_eq!(Cosine.name(), "cosine");
        assert_eq!(Hamming.name(), "Hamming");
        assert_eq!(Jaccard.name(), "Jaccard");
        assert_eq!(MetricKind::Cosine.to_string(), "cosine");
        assert_eq!(MetricKind::L1.to_string(), "L1");
    }

    #[test]
    fn dist_verification_matches_id_verification_for_every_metric() {
        use crate::DenseDataset;
        let dim = 12;
        let data = DenseDataset::from_rows(
            dim,
            (0..60).map(|i| {
                (0..dim).map(|j| ((i * dim + j) as f32 * 0.31).sin()).collect::<Vec<f32>>()
            }),
        );
        let q: Vec<f32> = (0..dim).map(|j| (j as f32 * 0.7).cos()).collect();
        let ids: Vec<PointId> = (0..60).collect();

        fn check<D: Distance<[f32]>>(
            d: &D,
            data: &crate::DenseDataset,
            ids: &[PointId],
            q: &[f32],
        ) {
            // Median distance as the radius: both accepts and rejects.
            let mut dists: Vec<f64> =
                ids.iter().map(|&id| d.distance(data.row(id as usize), q)).collect();
            dists.sort_by(|a, b| a.total_cmp(b));
            let r = dists[dists.len() / 2];
            let mut ids_only = Vec::new();
            d.verify_many(data, ids, q, r, &mut ids_only);
            let mut pairs = Vec::new();
            d.verify_many_dist(data, ids, q, r, &mut pairs);
            assert_eq!(
                pairs.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
                ids_only,
                "{} verify ids",
                d.name()
            );
            for &(id, dist) in &pairs {
                assert_eq!(
                    dist.to_bits(),
                    d.distance(data.row(id as usize), q).to_bits(),
                    "{} dist of id {id}",
                    d.name()
                );
            }
            let mut scan_ids = Vec::new();
            d.scan_within(data, q, r, &mut scan_ids);
            let mut scan_pairs = Vec::new();
            d.scan_within_dist(data, q, r, &mut scan_pairs);
            assert_eq!(
                scan_pairs.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
                scan_ids,
                "{} scan ids",
                d.name()
            );
            // r = ∞ covers every row with its exact distance.
            let mut all = Vec::new();
            d.scan_within_dist(data, q, f64::INFINITY, &mut all);
            assert_eq!(all.len(), data.len(), "{} full table", d.name());
        }
        check(&L1, &data, &ids, &q);
        check(&L2, &data, &ids, &q);
        check(&Cosine, &data, &ids, &q);
        check(&UnitCosine, &data, &ids, &q);
    }

    #[test]
    fn dist_defaults_cover_non_dense_metrics() {
        use crate::BinaryDataset;
        let data = BinaryDataset::from_fingerprints(&[0b0001, 0b0011, 0b1111, 0b1000]);
        let q = [0b0001u64];
        let ids: Vec<PointId> = vec![0, 1, 2, 3];
        let mut pairs = Vec::new();
        Hamming.verify_many_dist(&data, &ids, &q[..], 1.0, &mut pairs);
        assert_eq!(pairs, vec![(0, 0.0), (1, 1.0)]);
        let mut scan = Vec::new();
        Hamming.scan_within_dist(&data, &q[..], 2.0, &mut scan);
        assert_eq!(scan, vec![(0, 0.0), (1, 1.0), (3, 2.0)]);
    }

    /// Triangle inequality spot checks: metric axioms on random-ish data.
    #[test]
    fn triangle_inequality_holds() {
        let pts: Vec<[f32; 4]> =
            vec![[0.0, 1.0, 2.0, 3.0], [1.0, 1.0, 0.0, -2.0], [5.0, -3.0, 2.5, 0.5]];
        for a in &pts {
            for b in &pts {
                for c in &pts {
                    assert!(L1.distance(a, c) <= L1.distance(a, b) + L1.distance(b, c) + 1e-9);
                    assert!(L2.distance(a, c) <= L2.distance(a, b) + L2.distance(b, c) + 1e-9);
                }
            }
        }
    }
}
