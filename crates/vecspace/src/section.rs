//! Copy-on-write storage backing for flat arrays.
//!
//! A [`Section<T>`] is a flat array that is either *owned* (a plain
//! `Vec<T>`, the result of building in memory or of a buffered snapshot
//! read) or *shared* (a view into memory owned elsewhere — in practice
//! a page of a memory-mapped snapshot file held behind an `Arc`).
//! Read paths see `&[T]` through [`Deref`] either way,
//! so the query engine never branches on the backing; write paths call
//! [`to_mut`](Section::to_mut), which clones a shared backing into an
//! owned vector first (classic copy-on-write).
//!
//! The shared arm is deliberately a trait object rather than a concrete
//! mmap type: this crate stays `unsafe`-free, and the one `unsafe`
//! implementation of [`SliceBacking`] (the `mmap` region of
//! `hlsh-core`'s snapshot loader) lives next to the code that
//! guarantees its invariants.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Memory that can lend out a typed flat slice for as long as it lives.
///
/// Implementations must return the *same* slice on every call (the
/// backing is immutable); `Send + Sync` is required because sections
/// are shared across the scoped-thread batch engines.
pub trait SliceBacking<T>: Send + Sync {
    /// The backed slice.
    fn slice(&self) -> &[T];
}

impl<T: Send + Sync> SliceBacking<T> for Vec<T> {
    fn slice(&self) -> &[T] {
        self
    }
}

/// A flat array with a copy-on-write backing: owned (`Vec<T>`) or
/// shared (a borrowed view into an `Arc`-owned region, e.g. one section
/// of a memory-mapped snapshot).
pub enum Section<T> {
    /// Heap-owned storage.
    Owned(Vec<T>),
    /// Storage owned elsewhere, alive as long as the `Arc` is.
    Shared(Arc<dyn SliceBacking<T>>),
}

impl<T> Section<T> {
    /// An empty owned section.
    pub fn new() -> Self {
        Section::Owned(Vec::new())
    }

    /// Wraps a shared backing.
    pub fn shared(backing: Arc<dyn SliceBacking<T>>) -> Self {
        Section::Shared(backing)
    }

    /// The backed slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            Section::Owned(v) => v,
            Section::Shared(b) => b.slice(),
        }
    }

    /// Whether the section borrows a shared backing (e.g. an mmap)
    /// rather than owning its elements.
    pub fn is_shared(&self) -> bool {
        matches!(self, Section::Shared(_))
    }

    /// Heap elements this section owns: the vector capacity for owned
    /// sections, 0 for shared ones (their bytes live in the backing —
    /// for a memory-mapped snapshot, in the page cache, not the heap).
    pub fn heap_capacity(&self) -> usize {
        match self {
            Section::Owned(v) => v.capacity(),
            Section::Shared(_) => 0,
        }
    }

    /// Mutable access to the elements, converting a shared backing into
    /// an owned vector first (copy-on-write).
    pub fn to_mut(&mut self) -> &mut Vec<T>
    where
        T: Clone,
    {
        if let Section::Shared(b) = self {
            *self = Section::Owned(b.slice().to_vec());
        }
        match self {
            Section::Owned(v) => v,
            Section::Shared(_) => unreachable!("shared backing was just copied out"),
        }
    }

    /// Consumes the section into an owned vector, copying a shared
    /// backing out.
    pub fn into_vec(self) -> Vec<T>
    where
        T: Clone,
    {
        match self {
            Section::Owned(v) => v,
            Section::Shared(b) => b.slice().to_vec(),
        }
    }
}

impl<T> Deref for Section<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> Default for Section<T> {
    fn default() -> Self {
        Section::new()
    }
}

impl<T> From<Vec<T>> for Section<T> {
    fn from(v: Vec<T>) -> Self {
        Section::Owned(v)
    }
}

impl<T: Clone> Clone for Section<T> {
    fn clone(&self) -> Self {
        match self {
            Section::Owned(v) => Section::Owned(v.clone()),
            // Cloning a shared section clones the handle, not the
            // bytes: both clones keep reading the same backing.
            Section::Shared(b) => Section::Shared(Arc::clone(b)),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Section<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.is_shared() { "Shared" } else { "Owned" };
        f.debug_tuple(tag).field(&self.as_slice()).finish()
    }
}

/// Equality is by contents, never by backing: an mmap-loaded section
/// equals the owned section it was written from.
impl<T: PartialEq> PartialEq for Section<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq> Eq for Section<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_round_trip_and_equality() {
        let a: Section<u32> = vec![1, 2, 3].into();
        let b = Section::Owned(vec![1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert!(!a.is_shared());
        assert!(a.heap_capacity() >= 3);
    }

    #[test]
    fn shared_backing_is_cow() {
        let backing: Arc<dyn SliceBacking<u32>> = Arc::new(vec![5u32, 6, 7]);
        let mut s = Section::shared(Arc::clone(&backing));
        assert!(s.is_shared());
        assert_eq!(s.heap_capacity(), 0);
        assert_eq!(&s[..], &[5, 6, 7]);
        // Contents-equality across backings.
        assert_eq!(s, Section::Owned(vec![5, 6, 7]));

        // Clone shares the handle; mutation copies out.
        let t = s.clone();
        s.to_mut().push(8);
        assert!(!s.is_shared());
        assert_eq!(&s[..], &[5, 6, 7, 8]);
        assert!(t.is_shared());
        assert_eq!(&t[..], &[5, 6, 7]);
    }

    #[test]
    fn default_is_empty_owned() {
        let s: Section<u8> = Section::default();
        assert!(s.is_empty());
        assert!(!s.is_shared());
        assert_eq!(s.into_vec(), Vec::<u8>::new());
    }
}
