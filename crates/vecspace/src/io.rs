//! Plain-text data set parsers.
//!
//! The paper evaluates on UCI (dense whitespace/comma text) and libsvm
//! (sparse `label idx:val ...`) files. These parsers let a user drop the
//! original Corel / CoverType / Webspam / MNIST files into the harness in
//! place of our synthetic analogs.

use std::io::BufRead;

use crate::dense::DenseDataset;

/// Errors produced while parsing a data set file.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed record, with 1-based line number and description.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, message } => {
                write!(f, "malformed record on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            ParseError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parses libsvm-format data (`label idx:val idx:val ...`, 1-based
/// indexes) into a dense data set of dimensionality `dim`. Features with
/// index greater than `dim` are rejected; absent features are zero.
/// Labels are returned alongside the data.
///
/// Blank lines and lines starting with `#` are skipped. A trailing
/// comment introduced by `#` on a data line is ignored, matching common
/// libsvm tooling.
pub fn parse_libsvm<R: BufRead>(
    reader: R,
    dim: usize,
) -> Result<(DenseDataset, Vec<f32>), ParseError> {
    let mut ds = DenseDataset::new(dim);
    let mut labels = Vec::new();
    let mut row = vec![0.0f32; dim];
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let label_tok = parts.next().expect("non-empty line has a first token");
        let label: f32 = label_tok.parse().map_err(|_| ParseError::Malformed {
            line: lineno + 1,
            message: format!("bad label {label_tok:?}"),
        })?;
        row.iter_mut().for_each(|v| *v = 0.0);
        for tok in parts {
            let (idx_s, val_s) = tok.split_once(':').ok_or_else(|| ParseError::Malformed {
                line: lineno + 1,
                message: format!("feature {tok:?} is not idx:val"),
            })?;
            let idx: usize = idx_s.parse().map_err(|_| ParseError::Malformed {
                line: lineno + 1,
                message: format!("bad feature index {idx_s:?}"),
            })?;
            let val: f32 = val_s.parse().map_err(|_| ParseError::Malformed {
                line: lineno + 1,
                message: format!("bad feature value {val_s:?}"),
            })?;
            if idx == 0 || idx > dim {
                return Err(ParseError::Malformed {
                    line: lineno + 1,
                    message: format!("feature index {idx} outside 1..={dim}"),
                });
            }
            row[idx - 1] = val;
        }
        ds.push(&row);
        labels.push(label);
    }
    Ok((ds, labels))
}

/// Parses dense whitespace- or comma-separated rows of `dim` values
/// (UCI style). Blank lines and `#` comments are skipped.
pub fn parse_dense<R: BufRead>(reader: R, dim: usize) -> Result<DenseDataset, ParseError> {
    let mut ds = DenseDataset::new(dim);
    let mut row = Vec::with_capacity(dim);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        row.clear();
        for tok in line.split(|c: char| c == ',' || c.is_ascii_whitespace()) {
            if tok.is_empty() {
                continue;
            }
            let v: f32 = tok.parse().map_err(|_| ParseError::Malformed {
                line: lineno + 1,
                message: format!("bad value {tok:?}"),
            })?;
            row.push(v);
        }
        if row.len() != dim {
            return Err(ParseError::Malformed {
                line: lineno + 1,
                message: format!("expected {dim} values, found {}", row.len()),
            });
        }
        ds.push(&row);
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libsvm_happy_path() {
        let text = "\
# comment line
+1 1:0.5 3:2.0
-1 2:1.5   # trailing comment

+1 1:1.0 2:1.0 3:1.0
";
        let (ds, labels) = parse_libsvm(text.as_bytes(), 3).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(labels, vec![1.0, -1.0, 1.0]);
        assert_eq!(ds.row(0), &[0.5, 0.0, 2.0]);
        assert_eq!(ds.row(1), &[0.0, 1.5, 0.0]);
        assert_eq!(ds.row(2), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn libsvm_rejects_out_of_range_index() {
        let err = parse_libsvm("1 5:1.0".as_bytes(), 3).unwrap_err();
        match err {
            ParseError::Malformed { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn libsvm_rejects_zero_index() {
        assert!(parse_libsvm("1 0:1.0".as_bytes(), 3).is_err());
    }

    #[test]
    fn libsvm_rejects_bad_pair() {
        assert!(parse_libsvm("1 nonsense".as_bytes(), 3).is_err());
        assert!(parse_libsvm("1 a:1.0".as_bytes(), 3).is_err());
        assert!(parse_libsvm("1 1:x".as_bytes(), 3).is_err());
        assert!(parse_libsvm("zz 1:1.0".as_bytes(), 3).is_err());
    }

    #[test]
    fn dense_happy_path_commas_and_spaces() {
        let text = "1.0, 2.0, 3.0\n4 5 6\n";
        let ds = parse_dense(text.as_bytes(), 3).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn dense_rejects_wrong_arity() {
        let err = parse_dense("1.0 2.0".as_bytes(), 3).unwrap_err();
        assert!(err.to_string().contains("expected 3 values"));
    }

    #[test]
    fn dense_skips_comments_and_blanks() {
        let text = "# header\n\n1 2\n";
        let ds = parse_dense(text.as_bytes(), 2).unwrap();
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn error_display_formats() {
        let e = ParseError::Malformed { line: 7, message: "boom".into() };
        assert_eq!(e.to_string(), "malformed record on line 7: boom");
    }
}
