//! The [`PointSet`] abstraction shared by dense and binary data sets.

/// Identifier of a point inside a data set.
///
/// The whole pipeline (buckets, candidate sets, HyperLogLog elements)
/// works on indexes rather than point payloads; `u32` halves bucket
/// memory versus `usize` and comfortably covers the paper's largest data
/// set (CoverType, n = 581,012).
pub type PointId = u32;

/// A finite indexed collection of points of one type.
///
/// `Point` is an unsized borrow target (`[f32]` for dense data, `[u64]`
/// for packed binary data) so that both dataset layouts hand out
/// zero-copy views.
pub trait PointSet {
    /// Borrowed point type.
    type Point: ?Sized;

    /// Number of points.
    fn len(&self) -> usize;

    /// Whether the set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows point `i`.
    ///
    /// # Panics
    /// Implementations panic if `i >= self.len()`.
    fn point(&self, i: usize) -> &Self::Point;

    /// The set's row-major dense `f32` storage `(flat, dim)`, if it has
    /// one. Point `i` must be `flat[i·dim .. (i+1)·dim]`.
    ///
    /// This is the dispatch hook for the vectorized one-to-many
    /// verification kernels ([`crate::kernels`]): metrics that know a
    /// dense kernel ask for the view and fall back to per-point
    /// [`Distance::distance`](crate::Distance::distance) calls when it
    /// is `None` (the default).
    fn dense_view(&self) -> Option<(&[f32], usize)> {
        None
    }

    /// The contiguous dense storage of points `start .. start + len`,
    /// if the set has a dense view — the input shape of the
    /// point-blocked hashing kernel ([`crate::kernels::matmat`]): index
    /// construction hashes one such block per kernel call instead of
    /// one point at a time.
    ///
    /// # Panics
    /// Panics if `start + len` exceeds the set's length (via the slice
    /// bounds of the dense view).
    fn dense_block(&self, start: usize, len: usize) -> Option<&[f32]> {
        self.dense_view().map(|(flat, dim)| &flat[start * dim..(start + len) * dim])
    }
}

impl<T: PointSet + ?Sized> PointSet for &T {
    type Point = T::Point;

    fn len(&self) -> usize {
        (**self).len()
    }

    fn point(&self, i: usize) -> &Self::Point {
        (**self).point(i)
    }

    fn dense_view(&self) -> Option<(&[f32], usize)> {
        (**self).dense_view()
    }
}

// `Arc<S>` as a point set lets several indexes share one immutable copy
// of the data — the layout of the top-k index family, where every
// radius level owns its own tables but all levels verify candidates
// against the same points.
impl<T: PointSet + ?Sized> PointSet for std::sync::Arc<T> {
    type Point = T::Point;

    fn len(&self) -> usize {
        (**self).len()
    }

    fn point(&self, i: usize) -> &Self::Point {
        (**self).point(i)
    }

    fn dense_view(&self) -> Option<(&[f32], usize)> {
        (**self).dense_view()
    }
}

/// A point set that accepts appended points (streaming ingestion).
///
/// Implemented by [`crate::DenseDataset`] and [`crate::BinaryDataset`];
/// enables the core index's `insert` to grow the index
/// online (HyperLogLog sketches are insert-friendly; deletion is *not*
/// supported because a sketch cannot retract an element).
pub trait GrowablePointSet: PointSet {
    /// Appends one point, which becomes index `len() - 1`.
    ///
    /// # Panics
    /// Implementations panic on shape mismatch (wrong dimensionality /
    /// bit width).
    fn push_point(&mut self, p: &Self::Point);
}

/// A point set that can extract an owned copy of a subset of its rows.
///
/// This is the sharding hook: a sharded index partitions global point
/// ids across shards and materialises each shard's rows contiguously,
/// so every shard keeps a dense view (and with it the one-to-many
/// verification and block-hashing kernels). Implemented by
/// [`crate::DenseDataset`] and [`crate::BinaryDataset`].
pub trait SubsetPointSet: PointSet + Sized {
    /// Returns a new set holding exactly the rows `ids`, in the given
    /// order: row `i` of the result is a copy of row `ids[i]` of
    /// `self`.
    ///
    /// # Panics
    /// Implementations panic if any id is out of bounds.
    fn subset(&self, ids: &[PointId]) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Three;
    impl PointSet for Three {
        type Point = str;
        fn len(&self) -> usize {
            3
        }
        fn point(&self, i: usize) -> &str {
            ["a", "b", "c"][i]
        }
    }

    #[test]
    fn default_is_empty() {
        assert!(!Three.is_empty());
        assert_eq!(Three.point(1), "b");
    }

    #[test]
    fn reference_and_arc_delegate() {
        let by_ref: &Three = &Three;
        assert_eq!(by_ref.len(), 3);
        assert_eq!(by_ref.point(2), "c");
        assert!(by_ref.dense_view().is_none());
        let shared = std::sync::Arc::new(Three);
        assert_eq!(shared.len(), 3);
        assert_eq!(shared.point(0), "a");
        assert!(shared.dense_view().is_none());
    }
}
