//! Numeric special functions and summary statistics.
//!
//! The p-stable LSH collision probabilities (Datar et al., SoCG'04) need
//! the standard normal CDF; experiment reporting needs robust summary
//! statistics. Both live here so no external numeric crate is required.

/// Error function `erf(x)`, accurate to about `1.2e-7` absolute error.
///
/// Uses the Abramowitz & Stegun 7.1.26 rational approximation with the
/// usual odd-symmetry extension. That accuracy is far below the
/// statistical noise of any LSH parameter decision.
pub fn erf(x: f64) -> f64 {
    // Constants of A&S 7.1.26.
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function `Φ(x)`.
#[inline]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal density `φ(x)`.
#[inline]
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Online mean/variance accumulator (Welford's algorithm).
///
/// Used by the experiment harness to report mean ± standard deviation
/// over repeated runs exactly as the paper does ("average of 5 runs").
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Summary of a sample: min / mean / max, as reported in Figure 3 (left)
/// of the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Smallest observation.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest observation.
    pub max: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Number of observations.
    pub count: usize,
}

/// Summarises a non-empty slice.
///
/// # Panics
/// Panics if `xs` is empty.
pub fn summarize(xs: &[f64]) -> Summary {
    assert!(!xs.is_empty(), "cannot summarise an empty sample");
    let mut w = Welford::new();
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in xs {
        w.push(x);
        min = min.min(x);
        max = max.max(x);
    }
    Summary { min, mean: w.mean(), max, std_dev: w.std_dev(), count: xs.len() }
}

/// Linear-interpolated percentile (`p` in `[0, 100]`) of an unsorted
/// sample. Copies and sorts internally; intended for reporting, not hot
/// paths.
///
/// # Panics
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "cannot take a percentile of an empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (-1.0, -0.8427007929),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x}) = {} want {want}", erf(x));
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        // The A&S polynomial has ~1e-9 residual at 0; that is fine.
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
        assert!((normal_cdf(1.0) - 0.8413447461).abs() < 2e-7);
        assert!((normal_cdf(-1.96) - 0.0249978951).abs() < 2e-7);
        assert!(normal_cdf(8.0) > 0.999999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn normal_pdf_peak() {
        assert!((normal_pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert!((normal_pdf(1.0) - 0.2419707245).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = 0.0;
        let mut x = -5.0;
        while x <= 5.0 {
            let c = normal_cdf(x);
            assert!(c >= prev - 1e-12, "cdf not monotone at {x}");
            prev = c;
            x += 0.01;
        }
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_degenerate() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        let mut w1 = Welford::new();
        w1.push(3.0);
        assert_eq!(w1.mean(), 3.0);
        assert_eq!(w1.variance(), 0.0);
    }

    #[test]
    fn summarize_basics() {
        let s = summarize(&[1.0, 2.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.count, 3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summarize_empty_panics() {
        let _ = summarize(&[]);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }
}
