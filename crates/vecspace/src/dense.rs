//! Row-major dense `f32` matrices.
//!
//! All real-valued data sets in the paper (Corel, CoverType, Webspam) are
//! stored as a single contiguous allocation, which keeps the linear-scan
//! baseline honest: a scan walks memory sequentially exactly as an
//! optimised brute-force implementation would.

use crate::dataset::PointSet;
use crate::section::Section;

/// A dense data set of `n` points in `R^d`, stored row-major in one
/// contiguous flat buffer.
///
/// The buffer is a [`Section`], so it is either heap-owned (the normal
/// case) or borrowed zero-copy from a shared backing such as a
/// memory-mapped snapshot; mutating methods copy a shared backing out
/// on first write.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DenseDataset {
    data: Section<f32>,
    dim: usize,
}

impl DenseDataset {
    /// Creates an empty data set with the given dimensionality.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self { data: Section::new(), dim }
    }

    /// Creates an empty data set with room for `n` points.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self { data: Vec::with_capacity(dim * n).into(), dim }
    }

    /// Builds a data set from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim` or `dim == 0`.
    pub fn from_flat(data: Vec<f32>, dim: usize) -> Self {
        Self::from_section(data.into(), dim)
    }

    /// Builds a data set from a flat row-major [`Section`], which may
    /// borrow a shared backing (e.g. a memory-mapped snapshot section)
    /// instead of owning its rows.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim` or `dim == 0`.
    pub fn from_section(data: Section<f32>, dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        Self { data, dim }
    }

    /// Builds a data set from an iterator of rows.
    ///
    /// # Panics
    /// Panics if any row's length differs from `dim`.
    pub fn from_rows<I, R>(dim: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[f32]>,
    {
        let mut ds = Self::new(dim);
        for row in rows {
            ds.push(row.as_ref());
        }
        ds
    }

    /// Appends one point.
    ///
    /// # Panics
    /// Panics if `point.len() != self.dim()`.
    pub fn push(&mut self, point: &[f32]) {
        assert_eq!(point.len(), self.dim, "point dimensionality mismatch");
        self.data.to_mut().extend_from_slice(point);
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the data set holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of every point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow point `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        let start = i * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Iterator over all rows.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// The underlying flat buffer.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// The underlying storage section — exposes whether the rows are
    /// heap-owned or borrowed from a shared (e.g. mmap) backing.
    pub fn section(&self) -> &Section<f32> {
        &self.data
    }

    /// Removes the points with the given (sorted, unique) indexes and
    /// returns them as a new data set, preserving order. Used to split a
    /// query set off a data set the way the paper does ("randomly remove
    /// 100 points and use it as the query set").
    ///
    /// # Panics
    /// Panics if indexes are not strictly increasing or out of bounds.
    pub fn split_off_rows(&mut self, indexes: &[usize]) -> DenseDataset {
        for w in indexes.windows(2) {
            assert!(w[0] < w[1], "indexes must be strictly increasing");
        }
        if let Some(&last) = indexes.last() {
            assert!(last < self.len(), "index {last} out of bounds");
        }
        let mut removed = DenseDataset::with_capacity(self.dim, indexes.len());
        let mut kept = Vec::with_capacity(self.data.len() - indexes.len() * self.dim);
        let mut next = indexes.iter().copied().peekable();
        for (i, row) in self.data.chunks_exact(self.dim).enumerate() {
            if next.peek() == Some(&i) {
                removed.data.to_mut().extend_from_slice(row);
                next.next();
            } else {
                kept.extend_from_slice(row);
            }
        }
        self.data = kept.into();
        removed
    }

    /// Normalises every row to unit L2 norm in place. Rows with zero norm
    /// are left untouched. Useful before cosine-distance experiments.
    pub fn normalize_l2(&mut self) {
        let dim = self.dim;
        for row in self.data.to_mut().chunks_exact_mut(dim) {
            let norm = crate::kernels::norm(row);
            if norm > 0.0 {
                let inv = (1.0 / norm) as f32;
                for v in row {
                    *v *= inv;
                }
            }
        }
    }
}

impl crate::dataset::GrowablePointSet for DenseDataset {
    #[inline]
    fn push_point(&mut self, p: &[f32]) {
        self.push(p);
    }
}

impl crate::dataset::SubsetPointSet for DenseDataset {
    fn subset(&self, ids: &[crate::dataset::PointId]) -> Self {
        let mut out = DenseDataset::with_capacity(self.dim, ids.len());
        for &id in ids {
            out.push(self.row(id as usize));
        }
        out
    }
}

impl PointSet for DenseDataset {
    type Point = [f32];

    #[inline]
    fn len(&self) -> usize {
        DenseDataset::len(self)
    }

    #[inline]
    fn point(&self, i: usize) -> &[f32] {
        self.row(i)
    }

    #[inline]
    fn dense_view(&self) -> Option<(&[f32], usize)> {
        Some((&self.data, self.dim))
    }
}

/// Dot product of two equal-length slices, accumulated in `f64` for
/// numerical robustness at high dimension.
///
/// This and the functions below are the *scalar reference*
/// implementations: the throughput kernels in [`crate::kernels`] must
/// agree with them within the epsilon documented there
/// (property-tested in `tests/proptest_vec.rs`). Hot paths use the
/// kernels; these stay as the semantic ground truth and serve small
/// fixed-dimension call sites where chunking buys nothing.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (*x as f64) * (*y as f64)).sum()
}

/// Squared Euclidean distance.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (*x as f64) - (*y as f64);
            d * d
        })
        .sum()
}

/// Euclidean (L2) distance.
#[inline]
pub fn l2(a: &[f32], b: &[f32]) -> f64 {
    l2_sq(a, b).sqrt()
}

/// Manhattan (L1) distance.
#[inline]
pub fn l1(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| ((*x as f64) - (*y as f64)).abs()).sum()
}

/// L2 norm of a slice.
#[inline]
pub fn norm(a: &[f32]) -> f64 {
    a.iter().map(|v| (*v as f64) * (*v as f64)).sum::<f64>().sqrt()
}

/// Cosine distance `1 − cos(a, b)` in `[0, 2]`.
///
/// If either vector has zero norm the distance is defined as `1.0`
/// (orthogonal-like), which keeps the function total.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    // Clamp for fp error so downstream arccos never sees |cos| > 1.
    let cos = (dot(a, b) / (na * nb)).clamp(-1.0, 1.0);
    1.0 - cos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_row_round_trip() {
        let mut ds = DenseDataset::new(3);
        ds.push(&[1.0, 2.0, 3.0]);
        ds.push(&[4.0, 5.0, 6.0]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dim(), 3);
        assert_eq!(ds.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn push_wrong_dim_panics() {
        let mut ds = DenseDataset::new(3);
        ds.push(&[1.0, 2.0]);
    }

    #[test]
    fn from_flat_validates_length() {
        let ds = DenseDataset::from_flat(vec![0.0; 12], 4);
        assert_eq!(ds.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged() {
        let _ = DenseDataset::from_flat(vec![0.0; 10], 4);
    }

    #[test]
    fn from_section_shared_backing_reads_and_cows() {
        use crate::section::SliceBacking;
        use std::sync::Arc;
        let backing: Arc<dyn SliceBacking<f32>> = Arc::new(vec![1.0f32, 2.0, 3.0, 4.0]);
        let mut ds = DenseDataset::from_section(Section::shared(backing), 2);
        assert_eq!(ds.len(), 2);
        assert!(ds.section().is_shared());
        assert_eq!(ds.row(1), &[3.0, 4.0]);
        // Equality is by contents, regardless of backing.
        assert_eq!(ds, DenseDataset::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2));
        // First mutation copies the rows out of the shared backing.
        ds.push(&[5.0, 6.0]);
        assert!(!ds.section().is_shared());
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn rows_iterator_matches_row() {
        let ds = DenseDataset::from_rows(2, [[0.0f32, 1.0], [2.0, 3.0], [4.0, 5.0]]);
        let collected: Vec<&[f32]> = ds.rows().collect();
        assert_eq!(collected.len(), 3);
        for (i, r) in collected.iter().enumerate() {
            assert_eq!(*r, ds.row(i));
        }
    }

    #[test]
    fn split_off_rows_partitions() {
        let mut ds = DenseDataset::from_rows(1, (0..10).map(|i| [i as f32]));
        let removed = ds.split_off_rows(&[0, 3, 9]);
        assert_eq!(removed.len(), 3);
        assert_eq!(removed.row(0), &[0.0]);
        assert_eq!(removed.row(1), &[3.0]);
        assert_eq!(removed.row(2), &[9.0]);
        assert_eq!(ds.len(), 7);
        assert_eq!(ds.row(0), &[1.0]);
        assert_eq!(ds.row(6), &[8.0]);
    }

    #[test]
    fn split_off_rows_empty_index_list() {
        let mut ds = DenseDataset::from_rows(1, (0..4).map(|i| [i as f32]));
        let removed = ds.split_off_rows(&[]);
        assert_eq!(removed.len(), 0);
        assert_eq!(ds.len(), 4);
    }

    #[test]
    fn dot_and_norms() {
        let a = [1.0f32, 2.0, 2.0];
        let b = [2.0f32, 0.0, 1.0];
        assert_eq!(dot(&a, &b), 4.0);
        assert_eq!(norm(&a), 3.0);
        assert_eq!(l1(&a, &b), 4.0);
        assert!((l2(&a, &b) - 6.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cosine_distance_basic() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        assert!((cosine_distance(&a, &a) - 0.0).abs() < 1e-12);
        assert!((cosine_distance(&a, &b) - 1.0).abs() < 1e-12);
        let c = [-1.0f32, 0.0];
        assert!((cosine_distance(&a, &c) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_distance_zero_vector_is_one() {
        let z = [0.0f32, 0.0];
        let a = [1.0f32, 0.0];
        assert_eq!(cosine_distance(&z, &a), 1.0);
    }

    #[test]
    fn normalize_l2_makes_unit_rows() {
        let mut ds = DenseDataset::from_rows(2, [[3.0f32, 4.0], [0.0, 0.0]]);
        ds.normalize_l2();
        assert!((norm(ds.row(0)) - 1.0).abs() < 1e-6);
        assert_eq!(ds.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn pointset_impl_delegates() {
        let ds = DenseDataset::from_rows(2, [[1.0f32, 2.0]]);
        assert_eq!(PointSet::len(&ds), 1);
        assert_eq!(PointSet::point(&ds, 0), &[1.0, 2.0]);
    }

    #[test]
    fn dense_block_is_the_contiguous_row_range() {
        let ds = DenseDataset::from_rows(3, (0..5).map(|i| [i as f32, 0.0, 1.0]));
        let block = ds.dense_block(1, 3).expect("dense sets have blocks");
        assert_eq!(block.len(), 9);
        assert_eq!(&block[0..3], ds.row(1));
        assert_eq!(&block[6..9], ds.row(4 - 1));
        assert!(ds.dense_block(0, 0).expect("empty block").is_empty());
    }

    #[test]
    fn subset_copies_rows_in_given_order() {
        use crate::dataset::SubsetPointSet;
        let ds = DenseDataset::from_rows(2, (0..6).map(|i| [i as f32, -(i as f32)]));
        let sub = ds.subset(&[4, 0, 5]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.dim(), 2);
        assert_eq!(sub.row(0), ds.row(4));
        assert_eq!(sub.row(1), ds.row(0));
        assert_eq!(sub.row(2), ds.row(5));
        // Subsets stay dense: the kernels keep working on shards.
        assert!(sub.dense_view().is_some());
        let empty = ds.subset(&[]);
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.dim(), 2);
    }
}
