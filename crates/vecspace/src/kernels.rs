//! Throughput-oriented numeric kernels for dense `f32` data.
//!
//! Every function here is the chunked counterpart of a scalar reference
//! in [`crate::dense`]. The scalar versions promote each element to
//! `f64` before multiplying, which is numerically conservative but
//! compiles to serial scalar code; the kernels instead keep
//! [`LANES`]-wide arrays of `f32` accumulators in the inner loop — a
//! shape LLVM autovectorizes on stable Rust without `std::simd` — and
//! fold the lanes into one `f64` at the end. The remainder tail
//! (`len % LANES` elements) is accumulated in `f64` exactly like the
//! scalar reference, so results on slices shorter than [`LANES`] are
//! bit-identical to `crate::dense`.
//!
//! # Accuracy contract
//!
//! For `n`-element inputs with entries of magnitude `M`, lane
//! accumulation rounds in `f32`, so kernel outputs may differ from the
//! `f64` references by a relative error of roughly `n · 2⁻²⁴` on
//! cancellation-free sums (`l1`, `l2_sq`, `norm`) and by an absolute
//! error of roughly `n · M² · 2⁻²⁴` for [`dot`], whose terms may
//! cancel. `tests/proptest_vec.rs` pins this envelope. Callers that
//! filter by a radius must treat the boundary as fuzzy at that scale —
//! the one-to-many kernels therefore inflate their *early-exit* bound
//! slightly and make the final accept/reject decision on the fully
//! accumulated value, so an early exit never rejects a candidate the
//! non-exiting kernel would accept.

use crate::dataset::PointId;

/// Accumulator width of every chunked kernel (8 × `f32` = one AVX2
/// register; narrower SIMD ISAs simply use two registers).
pub const LANES: usize = 8;

/// How many [`LANES`]-chunks the one-to-many kernels process between
/// early-exit checks (64 elements — folding the lanes costs a few
/// scalar adds, so checking every chunk would cost more than it saves).
const EXIT_CHECK_CHUNKS: usize = 8;

/// Folds a lane accumulator into one `f64` with a fixed pairwise tree,
/// so every kernel (and every row of [`matvec`]) reduces in the same
/// order and produces bit-identical results for identical inputs.
#[inline(always)]
fn fold(acc: [f32; LANES]) -> f64 {
    let a = (acc[0] as f64 + acc[1] as f64) + (acc[2] as f64 + acc[3] as f64);
    let b = (acc[4] as f64 + acc[5] as f64) + (acc[6] as f64 + acc[7] as f64);
    a + b
}

/// Chunked dot product. Counterpart of [`crate::dense::dot`].
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    let mut sum = fold(acc);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        sum += (*x as f64) * (*y as f64);
    }
    sum
}

/// Chunked squared Euclidean distance. Counterpart of
/// [`crate::dense::l2_sq`].
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            let d = xa[l] - xb[l];
            acc[l] += d * d;
        }
    }
    let mut sum = fold(acc);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = (*x as f64) - (*y as f64);
        sum += d * d;
    }
    sum
}

/// Chunked Euclidean distance.
#[inline]
pub fn l2(a: &[f32], b: &[f32]) -> f64 {
    l2_sq(a, b).sqrt()
}

/// Chunked Manhattan distance. Counterpart of [`crate::dense::l1`].
#[inline]
pub fn l1(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            acc[l] += (xa[l] - xb[l]).abs();
        }
    }
    let mut sum = fold(acc);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        sum += ((*x as f64) - (*y as f64)).abs();
    }
    sum
}

/// Chunked L2 norm. Counterpart of [`crate::dense::norm`].
#[inline]
pub fn norm(a: &[f32]) -> f64 {
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    for xa in ca.by_ref() {
        for l in 0..LANES {
            acc[l] += xa[l] * xa[l];
        }
    }
    let mut sum = fold(acc);
    for x in ca.remainder() {
        sum += (*x as f64) * (*x as f64);
    }
    sum.sqrt()
}

/// Chunked cosine distance `1 − cos(a, b)` in a single pass (three lane
/// accumulator groups: `a·b`, `‖a‖²`, `‖b‖²`). Counterpart of
/// [`crate::dense::cosine_distance`], including the zero-norm → `1.0`
/// convention that keeps the function total.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut dab = [0.0f32; LANES];
    let mut daa = [0.0f32; LANES];
    let mut dbb = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            dab[l] += xa[l] * xb[l];
            daa[l] += xa[l] * xa[l];
            dbb[l] += xb[l] * xb[l];
        }
    }
    let (mut ab, mut aa, mut bb) = (fold(dab), fold(daa), fold(dbb));
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let (x, y) = (*x as f64, *y as f64);
        ab += x * y;
        aa += x * x;
        bb += y * y;
    }
    if aa == 0.0 || bb == 0.0 {
        return 1.0;
    }
    1.0 - (ab / (aa.sqrt() * bb.sqrt())).clamp(-1.0, 1.0)
}

/// Rows processed per block by the matrix–vector kernels. Four rows
/// share every load of `x`, and 4 × [`LANES`] `f32` accumulators still
/// fit the vector register file comfortably.
const ROW_BLOCK: usize = 4;

/// Dense matrix–vector product: `out[j] = row_j(mat) · x` for the
/// `mat.len() / dim` row-major rows of `mat`.
///
/// Processes `ROW_BLOCK` rows per pass so each chunk of `x` is loaded
/// once per block instead of once per row — this is the "all K
/// projections in one kernel" path used by the LSH g-functions. Every
/// row reduces with the same lane/fold schedule as [`dot`], so
/// `out[j]` is bit-identical to `dot(row_j, x)`.
///
/// # Panics
/// Panics if `mat.len()` is not a multiple of `dim`, `x.len() != dim`,
/// or `out.len()` differs from the row count.
pub fn matvec(mat: &[f32], dim: usize, x: &[f32], out: &mut [f64]) {
    assert!(dim > 0 && mat.len().is_multiple_of(dim), "matrix shape mismatch");
    assert_eq!(x.len(), dim, "vector length mismatch");
    assert_eq!(out.len(), mat.len() / dim, "output length mismatch");
    matvec_each(mat, dim, x, |j, v| out[j] = v);
}

/// Like [`matvec`] but hands each `(row_index, value)` to a callback in
/// ascending row order instead of writing a slice — the zero-allocation
/// shape used by `bucket_key` implementations that fold projections
/// into a hash key on the fly.
///
/// # Panics
/// Panics if `mat.len()` is not a multiple of `dim` or `x.len() != dim`.
pub fn matvec_each<F: FnMut(usize, f64)>(mat: &[f32], dim: usize, x: &[f32], mut f: F) {
    assert!(dim > 0 && mat.len().is_multiple_of(dim), "matrix shape mismatch");
    assert_eq!(x.len(), dim, "vector length mismatch");
    let rows = mat.len() / dim;
    let whole = dim - dim % LANES;
    let mut r = 0;
    while r + ROW_BLOCK <= rows {
        let base = r * dim;
        let mut acc = [[0.0f32; LANES]; ROW_BLOCK];
        let mut i = 0;
        while i < whole {
            for (j, lane) in acc.iter_mut().enumerate() {
                let row = &mat[base + j * dim + i..base + j * dim + i + LANES];
                let xc = &x[i..i + LANES];
                for l in 0..LANES {
                    lane[l] += row[l] * xc[l];
                }
            }
            i += LANES;
        }
        for (j, lane) in acc.iter().enumerate() {
            let mut sum = fold(*lane);
            for i in whole..dim {
                sum += (mat[base + j * dim + i] as f64) * (x[i] as f64);
            }
            f(r + j, sum);
        }
        r += ROW_BLOCK;
    }
    while r < rows {
        f(r, dot(&mat[r * dim..(r + 1) * dim], x));
        r += 1;
    }
}

/// Points processed per tile by [`matmat`]. Together with `ROW_BLOCK`
/// (4) this forms a `2 × 4` register tile — 8 independent
/// lane accumulators, enough parallel FMA chains to hide the FMA
/// latency that caps [`matvec`]'s four-chain tile at ~1 FMA/cycle
/// while still fitting the accumulators, the staged point chunks and a
/// streaming row chunk in a 16-register vector file (a 4 × 4 tile's 16
/// accumulators spill and measured slower; see `BENCH_build.json`).
const POINT_BLOCK: usize = 2;

/// Dense matrix–matrix product for a *block of points*:
/// `out[p·rows + j] = row_j(mat) · point_p` for the `points.len() / dim`
/// row-major points and the `mat.len() / dim` row-major rows of `mat`.
///
/// This is the build-side dual of [`matvec`]: where a query hashes one
/// point against all `k` projections, index construction hashes a block
/// of `B` points per table in one pass. The kernel tiles `POINT_BLOCK`
/// (2) points × `ROW_BLOCK` (4) rows, staging each point's chunk
/// once per tile and streaming every row chunk across the staged
/// points, so the 8 independent accumulator chains keep the FMA pipes
/// full without reloading `mat` per point.
///
/// Every `(row, point)` pair reduces with the same lane/fold schedule
/// as [`dot`], so `out[p·rows + j]` is **bit-identical** to
/// `dot(row_j, point_p)` — and therefore to a per-point [`matvec`] —
/// which is what lets the blocked build pipeline produce byte-identical
/// bucket keys to the per-point baseline.
///
/// # Panics
/// Panics if `mat.len()` or `points.len()` is not a multiple of `dim`,
/// or `out.len() != rows · npoints`.
pub fn matmat(mat: &[f32], dim: usize, points: &[f32], out: &mut [f64]) {
    assert!(dim > 0 && mat.len().is_multiple_of(dim), "matrix shape mismatch");
    assert!(points.len().is_multiple_of(dim), "point block shape mismatch");
    let rows = mat.len() / dim;
    let npts = points.len() / dim;
    assert_eq!(out.len(), rows * npts, "output length mismatch");
    let whole = dim - dim % LANES;
    let mut p = 0;
    while p + POINT_BLOCK <= npts {
        let mut r = 0;
        while r + ROW_BLOCK <= rows {
            let mut acc = [[[0.0f32; LANES]; ROW_BLOCK]; POINT_BLOCK];
            let mut i = 0;
            while i < whole {
                // Stage each point's chunk once, then stream every row
                // chunk across all staged points: one load per row
                // chunk per tile instead of one per (row, point) pair.
                let mut xs = [[0.0f32; LANES]; POINT_BLOCK];
                for (pi, x) in xs.iter_mut().enumerate() {
                    x.copy_from_slice(&points[(p + pi) * dim + i..(p + pi) * dim + i + LANES]);
                }
                for rj in 0..ROW_BLOCK {
                    let row = &mat[(r + rj) * dim + i..(r + rj) * dim + i + LANES];
                    for (pi, tile) in acc.iter_mut().enumerate() {
                        let lane = &mut tile[rj];
                        for l in 0..LANES {
                            lane[l] += row[l] * xs[pi][l];
                        }
                    }
                }
                i += LANES;
            }
            for (pi, tile) in acc.iter().enumerate() {
                for (rj, lane) in tile.iter().enumerate() {
                    let mut sum = fold(*lane);
                    for t in whole..dim {
                        sum +=
                            (mat[(r + rj) * dim + t] as f64) * (points[(p + pi) * dim + t] as f64);
                    }
                    out[(p + pi) * rows + (r + rj)] = sum;
                }
            }
            r += ROW_BLOCK;
        }
        while r < rows {
            for pi in 0..POINT_BLOCK {
                out[(p + pi) * rows + r] =
                    dot(&mat[r * dim..(r + 1) * dim], &points[(p + pi) * dim..(p + pi + 1) * dim]);
            }
            r += 1;
        }
        p += POINT_BLOCK;
    }
    while p < npts {
        matvec(mat, dim, &points[p * dim..(p + 1) * dim], &mut out[p * rows..(p + 1) * rows]);
        p += 1;
    }
}

/// Accumulates `Σ (a_i − b_i)²` with a periodic early exit: returns
/// `None` as soon as a partial sum provably exceeds `exit_bound`,
/// `Some(total)` otherwise. Partial sums of squares are monotone, so an
/// exit is exact with respect to the kernel's own arithmetic.
#[inline]
fn l2_sq_within(a: &[f32], b: &[f32], exit_bound: f64) -> Option<f64> {
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    let mut since_check = 0usize;
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            let d = xa[l] - xb[l];
            acc[l] += d * d;
        }
        since_check += 1;
        if since_check == EXIT_CHECK_CHUNKS {
            since_check = 0;
            if fold(acc) > exit_bound {
                return None;
            }
        }
    }
    let mut sum = fold(acc);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = (*x as f64) - (*y as f64);
        sum += d * d;
    }
    Some(sum)
}

/// Accumulates `Σ |a_i − b_i|` with the same early-exit scheme as
/// [`l2_sq_within`].
#[inline]
fn l1_within(a: &[f32], b: &[f32], exit_bound: f64) -> Option<f64> {
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    let mut since_check = 0usize;
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            acc[l] += (xa[l] - xb[l]).abs();
        }
        since_check += 1;
        if since_check == EXIT_CHECK_CHUNKS {
            since_check = 0;
            if fold(acc) > exit_bound {
                return None;
            }
        }
    }
    let mut sum = fold(acc);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        sum += ((*x as f64) - (*y as f64)).abs();
    }
    Some(sum)
}

/// Inflates a radius bound so lane rounding can only *defer* an early
/// exit, never force a rejection the full accumulation would accept.
#[inline]
fn inflate(bound: f64) -> f64 {
    bound * (1.0 + 1e-5) + f64::MIN_POSITIVE
}

/// One-to-many squared-L2 filter: appends to `out` every id in `ids`
/// whose row of the row-major matrix `flat` lies within squared radius
/// `r_sq` of `q`, preserving the order of `ids`. Rows are addressed as
/// `flat[id·dim .. (id+1)·dim]` — candidate verification straight out
/// of the dataset slab, no per-candidate virtual dispatch.
///
/// # Panics
/// Panics if `q.len() != dim` or an id indexes past the matrix.
pub fn l2_sq_one_to_many(
    flat: &[f32],
    dim: usize,
    ids: &[PointId],
    q: &[f32],
    r_sq: f64,
    out: &mut Vec<PointId>,
) {
    assert_eq!(q.len(), dim, "query length mismatch");
    let exit_bound = inflate(r_sq);
    for &id in ids {
        let start = id as usize * dim;
        let row = &flat[start..start + dim];
        if let Some(d2) = l2_sq_within(row, q, exit_bound) {
            if d2 <= r_sq {
                out.push(id);
            }
        }
    }
}

/// Full-scan squared-L2 filter: appends the id of every row of `flat`
/// within squared radius `r_sq` of `q`, in row order — the linear arm's
/// kernel (same early-exit scheme as [`l2_sq_one_to_many`], walking the
/// slab sequentially instead of gathering rows by id).
///
/// # Panics
/// Panics if `q.len() != dim`.
pub fn l2_sq_scan(flat: &[f32], dim: usize, q: &[f32], r_sq: f64, out: &mut Vec<PointId>) {
    assert_eq!(q.len(), dim, "query length mismatch");
    let exit_bound = inflate(r_sq);
    for (id, row) in flat.chunks_exact(dim).enumerate() {
        if let Some(d2) = l2_sq_within(row, q, exit_bound) {
            if d2 <= r_sq {
                out.push(id as PointId);
            }
        }
    }
}

/// One-to-many L2 filter in *unsquared* radius terms: accepts id iff
/// `l2(row, q) <= r` — bit-for-bit the same predicate (same chunked
/// `l2_sq`, same `sqrt`, same compare) as a per-candidate
/// `kernels::l2(row, q) <= r` loop, so a batched caller and a scalar
/// caller can never disagree, even exactly at the radius boundary or
/// for `r < 0` (which rejects everything, distances being
/// non-negative). The early exit still runs on the squared partial
/// sums. Prefer this over [`l2_sq_one_to_many`] whenever the
/// surrounding code thinks in radii rather than squared radii.
///
/// # Panics
/// Panics if `q.len() != dim` or an id indexes past the matrix.
pub fn l2_one_to_many(
    flat: &[f32],
    dim: usize,
    ids: &[PointId],
    q: &[f32],
    r: f64,
    out: &mut Vec<PointId>,
) {
    assert_eq!(q.len(), dim, "query length mismatch");
    let exit_bound = inflate(r * r);
    for &id in ids {
        let start = id as usize * dim;
        let row = &flat[start..start + dim];
        if let Some(d2) = l2_sq_within(row, q, exit_bound) {
            if d2.sqrt() <= r {
                out.push(id);
            }
        }
    }
}

/// Full-scan counterpart of [`l2_one_to_many`]: accepts every row with
/// `l2(row, q) <= r`, in row order.
///
/// # Panics
/// Panics if `q.len() != dim`.
pub fn l2_scan(flat: &[f32], dim: usize, q: &[f32], r: f64, out: &mut Vec<PointId>) {
    assert_eq!(q.len(), dim, "query length mismatch");
    let exit_bound = inflate(r * r);
    for (id, row) in flat.chunks_exact(dim).enumerate() {
        if let Some(d2) = l2_sq_within(row, q, exit_bound) {
            if d2.sqrt() <= r {
                out.push(id as PointId);
            }
        }
    }
}

/// Full-scan L1 filter; see [`l2_sq_scan`].
///
/// # Panics
/// Panics if `q.len() != dim`.
pub fn l1_scan(flat: &[f32], dim: usize, q: &[f32], r: f64, out: &mut Vec<PointId>) {
    assert_eq!(q.len(), dim, "query length mismatch");
    let exit_bound = inflate(r);
    for (id, row) in flat.chunks_exact(dim).enumerate() {
        if let Some(d) = l1_within(row, q, exit_bound) {
            if d <= r {
                out.push(id as PointId);
            }
        }
    }
}

/// One-to-many L1 filter; see [`l2_sq_one_to_many`].
///
/// # Panics
/// Panics if `q.len() != dim` or an id indexes past the matrix.
pub fn l1_one_to_many(
    flat: &[f32],
    dim: usize,
    ids: &[PointId],
    q: &[f32],
    r: f64,
    out: &mut Vec<PointId>,
) {
    assert_eq!(q.len(), dim, "query length mismatch");
    let exit_bound = inflate(r);
    for &id in ids {
        let start = id as usize * dim;
        let row = &flat[start..start + dim];
        if let Some(d) = l1_within(row, q, exit_bound) {
            if d <= r {
                out.push(id);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Distance-returning variants: same accept predicate, bit-identical
// accepted set and ordering as their id-only counterparts, but they
// also emit the distance each accept already computed — so callers that
// rank by distance (top-k) never pay a second per-id distance pass.
// Rejected candidates (early exit included) emit nothing.
// ---------------------------------------------------------------------

/// [`l2_one_to_many`] variant emitting `(id, distance)` pairs. The
/// distance is the fully accumulated `sqrt(l2_sq(row, q))` — bit-
/// identical to a separate [`l2`] call on the same row.
///
/// # Panics
/// Panics if `q.len() != dim` or an id indexes past the matrix.
pub fn l2_one_to_many_dist(
    flat: &[f32],
    dim: usize,
    ids: &[PointId],
    q: &[f32],
    r: f64,
    out: &mut Vec<(PointId, f64)>,
) {
    assert_eq!(q.len(), dim, "query length mismatch");
    let exit_bound = inflate(r * r);
    for &id in ids {
        let start = id as usize * dim;
        let row = &flat[start..start + dim];
        if let Some(d2) = l2_sq_within(row, q, exit_bound) {
            let d = d2.sqrt();
            if d <= r {
                out.push((id, d));
            }
        }
    }
}

/// Full-scan counterpart of [`l2_one_to_many_dist`], in row order.
///
/// # Panics
/// Panics if `q.len() != dim`.
pub fn l2_scan_dist(flat: &[f32], dim: usize, q: &[f32], r: f64, out: &mut Vec<(PointId, f64)>) {
    assert_eq!(q.len(), dim, "query length mismatch");
    let exit_bound = inflate(r * r);
    for (id, row) in flat.chunks_exact(dim).enumerate() {
        if let Some(d2) = l2_sq_within(row, q, exit_bound) {
            let d = d2.sqrt();
            if d <= r {
                out.push((id as PointId, d));
            }
        }
    }
}

/// [`l1_one_to_many`] variant emitting `(id, distance)` pairs; the
/// distance is bit-identical to a separate [`l1`] call.
///
/// # Panics
/// Panics if `q.len() != dim` or an id indexes past the matrix.
pub fn l1_one_to_many_dist(
    flat: &[f32],
    dim: usize,
    ids: &[PointId],
    q: &[f32],
    r: f64,
    out: &mut Vec<(PointId, f64)>,
) {
    assert_eq!(q.len(), dim, "query length mismatch");
    let exit_bound = inflate(r);
    for &id in ids {
        let start = id as usize * dim;
        let row = &flat[start..start + dim];
        if let Some(d) = l1_within(row, q, exit_bound) {
            if d <= r {
                out.push((id, d));
            }
        }
    }
}

/// Full-scan counterpart of [`l1_one_to_many_dist`], in row order.
///
/// # Panics
/// Panics if `q.len() != dim`.
pub fn l1_scan_dist(flat: &[f32], dim: usize, q: &[f32], r: f64, out: &mut Vec<(PointId, f64)>) {
    assert_eq!(q.len(), dim, "query length mismatch");
    let exit_bound = inflate(r);
    for (id, row) in flat.chunks_exact(dim).enumerate() {
        if let Some(d) = l1_within(row, q, exit_bound) {
            if d <= r {
                out.push((id as PointId, d));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;

    fn wave(n: usize, phase: f32) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.37 + phase).sin() * 3.0).collect()
    }

    #[test]
    fn kernels_match_scalar_on_short_slices_exactly() {
        // Below LANES elements only the f64 tail runs: bit-identical.
        for n in 0..LANES {
            let a = wave(n, 0.1);
            let b = wave(n, 1.7);
            assert_eq!(dot(&a, &b), dense::dot(&a, &b), "dot n={n}");
            assert_eq!(l2_sq(&a, &b), dense::l2_sq(&a, &b), "l2_sq n={n}");
            assert_eq!(l1(&a, &b), dense::l1(&a, &b), "l1 n={n}");
            assert_eq!(norm(&a), dense::norm(&a), "norm n={n}");
        }
    }

    #[test]
    fn kernels_match_scalar_within_epsilon() {
        for n in [8usize, 16, 63, 64, 100, 256, 960] {
            let a = wave(n, 0.0);
            let b = wave(n, 2.3);
            let eps = 1e-4 * (n as f64);
            assert!((dot(&a, &b) - dense::dot(&a, &b)).abs() < eps, "dot n={n}");
            assert!((l2_sq(&a, &b) - dense::l2_sq(&a, &b)).abs() < eps, "l2_sq n={n}");
            assert!((l1(&a, &b) - dense::l1(&a, &b)).abs() < eps, "l1 n={n}");
            assert!((norm(&a) - dense::norm(&a)).abs() < eps, "norm n={n}");
            assert!(
                (cosine_distance(&a, &b) - dense::cosine_distance(&a, &b)).abs() < 1e-5,
                "cosine n={n}"
            );
        }
    }

    #[test]
    fn chunked_cosine_keeps_zero_norm_convention() {
        // The documented total-function convention: zero-norm input (on
        // either side) yields exactly 1.0, for lengths that exercise
        // both the lane loop and the scalar tail.
        for n in [3usize, 8, 19, 64] {
            let z = vec![0.0f32; n];
            let a = wave(n, 0.4);
            assert_eq!(cosine_distance(&z, &a), 1.0, "zero lhs n={n}");
            assert_eq!(cosine_distance(&a, &z), 1.0, "zero rhs n={n}");
            assert_eq!(cosine_distance(&z, &z), 1.0, "zero both n={n}");
        }
        // And identical non-zero inputs still give ~0.
        let a = wave(40, 0.9);
        assert!(cosine_distance(&a, &a).abs() < 1e-9);
    }

    #[test]
    fn matvec_rows_match_dot_bitwise() {
        // Block path (rows 0..4) and the per-row remainder path must
        // both reduce exactly like `dot`.
        for (rows, dim) in [(1usize, 5usize), (4, 24), (6, 17), (7, 64), (9, 3)] {
            let mat = wave(rows * dim, 0.2);
            let x = wave(dim, 1.1);
            let mut out = vec![0.0f64; rows];
            matvec(&mat, dim, &x, &mut out);
            for (j, &v) in out.iter().enumerate() {
                let reference = dot(&mat[j * dim..(j + 1) * dim], &x);
                assert_eq!(v.to_bits(), reference.to_bits(), "row {j} of {rows}x{dim}");
            }
        }
    }

    #[test]
    fn matvec_each_visits_rows_in_order() {
        let (rows, dim) = (11usize, 16usize);
        let mat = wave(rows * dim, 0.0);
        let x = wave(dim, 0.5);
        let mut seen = Vec::new();
        matvec_each(&mat, dim, &x, |j, v| seen.push((j, v)));
        assert_eq!(seen.len(), rows);
        for (expect, (j, _)) in seen.iter().enumerate() {
            assert_eq!(expect, *j);
        }
        let mut out = vec![0.0f64; rows];
        matvec(&mat, dim, &x, &mut out);
        for ((_, v), o) in seen.iter().zip(&out) {
            assert_eq!(v.to_bits(), o.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "vector length mismatch")]
    fn matvec_rejects_bad_vector() {
        let mut out = [0.0f64; 1];
        matvec(&[0.0; 4], 4, &[0.0; 3], &mut out);
    }

    #[test]
    fn one_to_many_filters_match_per_pair_kernels() {
        let dim = 96;
        let n = 200;
        let flat = wave(n * dim, 0.3);
        let q = wave(dim, 4.2);
        let ids: Vec<PointId> = (0..n as PointId).collect();

        // Pick radii at distance quantiles so both arms of the filter
        // (accept / early-exit reject) are exercised.
        let mut d2: Vec<f64> = (0..n).map(|i| l2_sq(&flat[i * dim..(i + 1) * dim], &q)).collect();
        d2.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for r_sq in [d2[10] * 1.000001, d2[n / 2], d2[n - 2]] {
            let mut got = Vec::new();
            l2_sq_one_to_many(&flat, dim, &ids, &q, r_sq, &mut got);
            let expect: Vec<PointId> = ids
                .iter()
                .copied()
                .filter(|&id| l2_sq(&flat[id as usize * dim..(id as usize + 1) * dim], &q) <= r_sq)
                .collect();
            assert_eq!(got, expect, "l2 r_sq={r_sq}");
        }

        let mut d1: Vec<f64> = (0..n).map(|i| l1(&flat[i * dim..(i + 1) * dim], &q)).collect();
        d1.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for r in [d1[10] * 1.000001, d1[n / 2], d1[n - 2]] {
            let mut got = Vec::new();
            l1_one_to_many(&flat, dim, &ids, &q, r, &mut got);
            let expect: Vec<PointId> = ids
                .iter()
                .copied()
                .filter(|&id| l1(&flat[id as usize * dim..(id as usize + 1) * dim], &q) <= r)
                .collect();
            assert_eq!(got, expect, "l1 r={r}");
        }
    }

    #[test]
    fn one_to_many_preserves_id_order_and_duplicates() {
        let dim = 8;
        let flat = wave(4 * dim, 0.0);
        let q = flat[0..dim].to_vec();
        let ids = [2u32, 0, 0, 3];
        let mut out = Vec::new();
        l2_sq_one_to_many(&flat, dim, &ids, &q, 1e-9, &mut out);
        // Only row 0 matches q; both occurrences survive, in order.
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    fn l2_one_to_many_matches_scalar_predicate_exactly() {
        // The unsquared-radius variant must agree with a per-row
        // `l2(row, q) <= r` loop bit-for-bit — including when r is
        // EXACTLY a candidate's computed distance (boundary equality)
        // and when r is negative (reject all; distances are >= 0).
        let dim = 33;
        let n = 50;
        let flat = wave(n * dim, 0.7);
        let q = wave(dim, 3.3);
        let ids: Vec<PointId> = (0..n as PointId).collect();
        for probe in [0usize, 7, n - 1] {
            let r = l2(&flat[probe * dim..(probe + 1) * dim], &q);
            let mut got = Vec::new();
            l2_one_to_many(&flat, dim, &ids, &q, r, &mut got);
            let expect: Vec<PointId> = ids
                .iter()
                .copied()
                .filter(|&id| l2(&flat[id as usize * dim..(id as usize + 1) * dim], &q) <= r)
                .collect();
            assert_eq!(got, expect, "boundary r from row {probe}");
            assert!(got.contains(&(probe as PointId)), "boundary row itself must be accepted");

            let mut scan = Vec::new();
            l2_scan(&flat, dim, &q, r, &mut scan);
            assert_eq!(scan, expect);
        }
        let mut got = Vec::new();
        l2_one_to_many(&flat, dim, &ids, &q, -1.0, &mut got);
        assert!(got.is_empty(), "negative radius must reject everything");
    }

    #[test]
    fn matmat_matches_matvec_bitwise() {
        // Tile path (2 points × 4 rows), row remainders, and point
        // remainders must all reduce exactly like the per-point matvec.
        for (npts, rows, dim) in
            [(1usize, 1usize, 3usize), (4, 4, 24), (5, 7, 64), (9, 6, 17), (11, 8, 256), (3, 4, 8)]
        {
            let mat = wave(rows * dim, 0.6);
            let pts = wave(npts * dim, 1.9);
            let mut out = vec![0.0f64; npts * rows];
            matmat(&mat, dim, &pts, &mut out);
            for p in 0..npts {
                let mut per_point = vec![0.0f64; rows];
                matvec(&mat, dim, &pts[p * dim..(p + 1) * dim], &mut per_point);
                for (j, &v) in per_point.iter().enumerate() {
                    assert_eq!(
                        out[p * rows + j].to_bits(),
                        v.to_bits(),
                        "point {p} row {j} of {npts}x{rows}x{dim}"
                    );
                }
            }
        }
    }

    #[test]
    fn matmat_empty_point_block() {
        let mat = wave(8, 0.0);
        let mut out: Vec<f64> = Vec::new();
        matmat(&mat, 4, &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "output length mismatch")]
    fn matmat_rejects_bad_output_len() {
        let mut out = [0.0f64; 3];
        matmat(&[0.0; 8], 4, &[0.0; 8], &mut out);
    }

    #[test]
    fn dist_variants_match_id_variants_and_emit_exact_distances() {
        let dim = 48;
        let n = 120;
        let flat = wave(n * dim, 0.8);
        let q = wave(dim, 2.9);
        let ids: Vec<PointId> = (0..n as PointId).collect();

        let mut d2s: Vec<f64> = (0..n).map(|i| l2(&flat[i * dim..(i + 1) * dim], &q)).collect();
        d2s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for r in [d2s[5], d2s[n / 2], d2s[n - 1], -1.0] {
            let mut ids_only = Vec::new();
            l2_one_to_many(&flat, dim, &ids, &q, r, &mut ids_only);
            let mut pairs = Vec::new();
            l2_one_to_many_dist(&flat, dim, &ids, &q, r, &mut pairs);
            assert_eq!(pairs.iter().map(|&(id, _)| id).collect::<Vec<_>>(), ids_only, "r={r}");
            for &(id, d) in &pairs {
                let expect = l2(&flat[id as usize * dim..(id as usize + 1) * dim], &q);
                assert_eq!(d.to_bits(), expect.to_bits(), "l2 dist for id {id}");
            }
            let mut scan_pairs = Vec::new();
            l2_scan_dist(&flat, dim, &q, r, &mut scan_pairs);
            assert_eq!(scan_pairs, pairs, "scan vs gather at r={r}");
        }

        let mut d1s: Vec<f64> = (0..n).map(|i| l1(&flat[i * dim..(i + 1) * dim], &q)).collect();
        d1s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for r in [d1s[5], d1s[n / 2], d1s[n - 1]] {
            let mut ids_only = Vec::new();
            l1_one_to_many(&flat, dim, &ids, &q, r, &mut ids_only);
            let mut pairs = Vec::new();
            l1_one_to_many_dist(&flat, dim, &ids, &q, r, &mut pairs);
            assert_eq!(pairs.iter().map(|&(id, _)| id).collect::<Vec<_>>(), ids_only, "r={r}");
            for &(id, d) in &pairs {
                let expect = l1(&flat[id as usize * dim..(id as usize + 1) * dim], &q);
                assert_eq!(d.to_bits(), expect.to_bits(), "l1 dist for id {id}");
            }
            let mut scan_pairs = Vec::new();
            l1_scan_dist(&flat, dim, &q, r, &mut scan_pairs);
            assert_eq!(scan_pairs, pairs, "l1 scan vs gather at r={r}");
        }
    }

    #[test]
    fn dist_scan_with_infinite_radius_covers_every_row() {
        // The top-k exact fallback scans with r = ∞ to get every
        // distance in one kernel pass; nothing may be dropped.
        let dim = 20;
        let n = 33;
        let flat = wave(n * dim, 0.2);
        let q = wave(dim, 1.1);
        let mut pairs = Vec::new();
        l2_scan_dist(&flat, dim, &q, f64::INFINITY, &mut pairs);
        assert_eq!(pairs.len(), n);
        for (i, &(id, d)) in pairs.iter().enumerate() {
            assert_eq!(id as usize, i);
            assert_eq!(d.to_bits(), l2(&flat[i * dim..(i + 1) * dim], &q).to_bits());
        }
    }

    #[test]
    fn early_exit_never_rejects_boundary_accepts() {
        // A far row whose prefix already exceeds the radius must be
        // rejected, while an exact-boundary row survives.
        let dim = 128;
        let mut flat = vec![0.0f32; 2 * dim];
        flat[0] = 100.0; // row 0: d2 = 10_000 from origin
        flat[dim] = 3.0; // row 1: d2 = 9
        let q = vec![0.0f32; dim];
        let mut out = Vec::new();
        l2_sq_one_to_many(&flat, dim, &[0, 1], &q, 9.0, &mut out);
        assert_eq!(out, vec![1]);
    }
}
