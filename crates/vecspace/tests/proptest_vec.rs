//! Property-based tests of the vector substrate: metric axioms,
//! bit-vector round trips, and parser totality.

use hlsh_vec::binary::{hamming, jaccard_distance};
use hlsh_vec::dense::{cosine_distance, dot, l1, l2, norm};
use hlsh_vec::{BinaryVec, DenseDataset};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn l1_l2_metric_axioms(
        a in vec(-100.0f32..100.0, 8),
        b in vec(-100.0f32..100.0, 8),
        c in vec(-100.0f32..100.0, 8),
    ) {
        // Symmetry.
        prop_assert!((l1(&a, &b) - l1(&b, &a)).abs() < 1e-9);
        prop_assert!((l2(&a, &b) - l2(&b, &a)).abs() < 1e-9);
        // Identity.
        prop_assert!(l1(&a, &a).abs() < 1e-9);
        prop_assert!(l2(&a, &a).abs() < 1e-9);
        // Non-negativity.
        prop_assert!(l1(&a, &b) >= 0.0);
        prop_assert!(l2(&a, &b) >= 0.0);
        // Triangle inequality (with fp slack).
        prop_assert!(l1(&a, &c) <= l1(&a, &b) + l1(&b, &c) + 1e-6);
        prop_assert!(l2(&a, &c) <= l2(&a, &b) + l2(&b, &c) + 1e-6);
    }

    #[test]
    fn l2_dominated_by_l1(a in vec(-50.0f32..50.0, 12), b in vec(-50.0f32..50.0, 12)) {
        prop_assert!(l2(&a, &b) <= l1(&a, &b) + 1e-6);
    }

    #[test]
    fn dot_cauchy_schwarz(a in vec(-10.0f32..10.0, 6), b in vec(-10.0f32..10.0, 6)) {
        prop_assert!(dot(&a, &b).abs() <= norm(&a) * norm(&b) + 1e-6);
    }

    #[test]
    fn cosine_distance_range(a in vec(-10.0f32..10.0, 5), b in vec(-10.0f32..10.0, 5)) {
        let d = cosine_distance(&a, &b);
        prop_assert!((-1e-9..=2.0 + 1e-9).contains(&d));
        prop_assert!((cosine_distance(&a, &b) - cosine_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn binaryvec_set_get_round_trip(bits in vec(any::<bool>(), 1..200)) {
        let v = BinaryVec::from_bools(&bits);
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i), b);
        }
        prop_assert_eq!(v.count_ones() as usize, bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn hamming_is_a_metric(
        a in vec(any::<bool>(), 64),
        b in vec(any::<bool>(), 64),
        c in vec(any::<bool>(), 64),
    ) {
        let (va, vb, vc) = (
            BinaryVec::from_bools(&a),
            BinaryVec::from_bools(&b),
            BinaryVec::from_bools(&c),
        );
        prop_assert_eq!(hamming(&va, &vb), hamming(&vb, &va));
        prop_assert_eq!(hamming(&va, &va), 0);
        prop_assert!(hamming(&va, &vc) <= hamming(&va, &vb) + hamming(&vb, &vc));
    }

    #[test]
    fn jaccard_range_and_symmetry(a in vec(any::<bool>(), 96), b in vec(any::<bool>(), 96)) {
        let (va, vb) = (BinaryVec::from_bools(&a), BinaryVec::from_bools(&b));
        let d = jaccard_distance(&va, &vb);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert_eq!(d, jaccard_distance(&vb, &va));
        prop_assert_eq!(jaccard_distance(&va, &va), 0.0);
    }

    #[test]
    fn split_off_rows_preserves_all_points(
        rows in vec(vec(-5.0f32..5.0, 3), 2..50),
        pick_seed in 0usize..1000,
    ) {
        let mut ds = DenseDataset::from_rows(3, rows.iter().map(|r| {
            let mut a = [0.0f32; 3];
            a.copy_from_slice(r);
            a
        }));
        let take = (pick_seed % rows.len()).max(1);
        let idx: Vec<usize> = (0..take).map(|i| i * rows.len() / take).collect();
        let mut uniq = idx.clone();
        uniq.dedup();
        let removed = ds.split_off_rows(&uniq);
        prop_assert_eq!(removed.len() + ds.len(), rows.len());
        // Every original row appears exactly once across both sets.
        let mut all: Vec<Vec<u32>> = removed
            .rows()
            .chain(ds.rows())
            .map(|r| r.iter().map(|v| v.to_bits()).collect())
            .collect();
        all.sort();
        let mut orig: Vec<Vec<u32>> =
            rows.iter().map(|r| r.iter().map(|v| v.to_bits()).collect()).collect();
        orig.sort();
        prop_assert_eq!(all, orig);
    }

    #[test]
    fn libsvm_parser_never_panics(text in "[ -~\\n]{0,300}") {
        // Totality: arbitrary printable input either parses or errors,
        // never panics.
        let _ = hlsh_vec::io::parse_libsvm(text.as_bytes(), 8);
        let _ = hlsh_vec::io::parse_dense(text.as_bytes(), 4);
    }
}
