//! Property-based tests of the vector substrate: metric axioms,
//! bit-vector round trips, parser totality, and chunked-kernel parity
//! against the scalar reference implementations.

use hlsh_vec::binary::{hamming, jaccard_distance};
use hlsh_vec::dense::{cosine_distance, dot, l1, l2, norm};
use hlsh_vec::{kernels, BinaryVec, DenseDataset};
use proptest::collection::vec;
use proptest::prelude::*;

/// Tolerance for one chunked kernel result against its `f64` scalar
/// reference: lane accumulation rounds in `f32`, so the error grows
/// with the element count `n` and the magnitude of the accumulated
/// terms (see the accuracy contract in `hlsh_vec::kernels`). `scale`
/// must be the sum of the absolute values of the accumulated terms —
/// for `dot` that is `Σ|aᵢ·bᵢ|`, NOT `|Σ aᵢ·bᵢ|`, because cancellation
/// shrinks the result without shrinking the rounding error.
fn kernel_tolerance(n: usize, scale: f64) -> f64 {
    // 2⁻²⁴ per f32 rounding step, n/8 steps per lane, with headroom.
    let eps = (n as f64) * 8.0 * f32::EPSILON as f64;
    scale * eps + 1e-9
}

proptest! {
    #[test]
    fn l1_l2_metric_axioms(
        a in vec(-100.0f32..100.0, 8),
        b in vec(-100.0f32..100.0, 8),
        c in vec(-100.0f32..100.0, 8),
    ) {
        // Symmetry.
        prop_assert!((l1(&a, &b) - l1(&b, &a)).abs() < 1e-9);
        prop_assert!((l2(&a, &b) - l2(&b, &a)).abs() < 1e-9);
        // Identity.
        prop_assert!(l1(&a, &a).abs() < 1e-9);
        prop_assert!(l2(&a, &a).abs() < 1e-9);
        // Non-negativity.
        prop_assert!(l1(&a, &b) >= 0.0);
        prop_assert!(l2(&a, &b) >= 0.0);
        // Triangle inequality (with fp slack).
        prop_assert!(l1(&a, &c) <= l1(&a, &b) + l1(&b, &c) + 1e-6);
        prop_assert!(l2(&a, &c) <= l2(&a, &b) + l2(&b, &c) + 1e-6);
    }

    #[test]
    fn l2_dominated_by_l1(a in vec(-50.0f32..50.0, 12), b in vec(-50.0f32..50.0, 12)) {
        prop_assert!(l2(&a, &b) <= l1(&a, &b) + 1e-6);
    }

    #[test]
    fn dot_cauchy_schwarz(a in vec(-10.0f32..10.0, 6), b in vec(-10.0f32..10.0, 6)) {
        prop_assert!(dot(&a, &b).abs() <= norm(&a) * norm(&b) + 1e-6);
    }

    #[test]
    fn cosine_distance_range(a in vec(-10.0f32..10.0, 5), b in vec(-10.0f32..10.0, 5)) {
        let d = cosine_distance(&a, &b);
        prop_assert!((-1e-9..=2.0 + 1e-9).contains(&d));
        prop_assert!((cosine_distance(&a, &b) - cosine_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn binaryvec_set_get_round_trip(bits in vec(any::<bool>(), 1..200)) {
        let v = BinaryVec::from_bools(&bits);
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(v.get(i), b);
        }
        prop_assert_eq!(v.count_ones() as usize, bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn hamming_is_a_metric(
        a in vec(any::<bool>(), 64),
        b in vec(any::<bool>(), 64),
        c in vec(any::<bool>(), 64),
    ) {
        let (va, vb, vc) = (
            BinaryVec::from_bools(&a),
            BinaryVec::from_bools(&b),
            BinaryVec::from_bools(&c),
        );
        prop_assert_eq!(hamming(&va, &vb), hamming(&vb, &va));
        prop_assert_eq!(hamming(&va, &va), 0);
        prop_assert!(hamming(&va, &vc) <= hamming(&va, &vb) + hamming(&vb, &vc));
    }

    #[test]
    fn jaccard_range_and_symmetry(a in vec(any::<bool>(), 96), b in vec(any::<bool>(), 96)) {
        let (va, vb) = (BinaryVec::from_bools(&a), BinaryVec::from_bools(&b));
        let d = jaccard_distance(&va, &vb);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert_eq!(d, jaccard_distance(&vb, &va));
        prop_assert_eq!(jaccard_distance(&va, &va), 0.0);
    }

    #[test]
    fn split_off_rows_preserves_all_points(
        rows in vec(vec(-5.0f32..5.0, 3), 2..50),
        pick_seed in 0usize..1000,
    ) {
        let mut ds = DenseDataset::from_rows(3, rows.iter().map(|r| {
            let mut a = [0.0f32; 3];
            a.copy_from_slice(r);
            a
        }));
        let take = (pick_seed % rows.len()).max(1);
        let idx: Vec<usize> = (0..take).map(|i| i * rows.len() / take).collect();
        let mut uniq = idx.clone();
        uniq.dedup();
        let removed = ds.split_off_rows(&uniq);
        prop_assert_eq!(removed.len() + ds.len(), rows.len());
        // Every original row appears exactly once across both sets.
        let mut all: Vec<Vec<u32>> = removed
            .rows()
            .chain(ds.rows())
            .map(|r| r.iter().map(|v| v.to_bits()).collect())
            .collect();
        all.sort();
        let mut orig: Vec<Vec<u32>> =
            rows.iter().map(|r| r.iter().map(|v| v.to_bits()).collect()).collect();
        orig.sort();
        prop_assert_eq!(all, orig);
    }

    /// Chunked kernels vs. scalar references, any length (covers the
    /// pure-tail, exact-chunk, and mixed cases) — the documented
    /// epsilon envelope of `hlsh_vec::kernels`.
    #[test]
    fn kernels_agree_with_scalar_references(
        pairs in vec((-100.0f32..100.0, -100.0f32..100.0), 0..200),
    ) {
        let (a, b): (Vec<f32>, Vec<f32>) = pairs.into_iter().unzip();
        let n = a.len();

        let dot_scale: f64 = a.iter().zip(&b).map(|(x, y)| (*x as f64 * *y as f64).abs()).sum();
        prop_assert!((kernels::dot(&a, &b) - dot(&a, &b)).abs()
            <= kernel_tolerance(n, dot_scale));

        let l2s_ref = l2(&a, &b).powi(2);
        prop_assert!((kernels::l2_sq(&a, &b) - l2s_ref).abs()
            <= kernel_tolerance(n, l2s_ref));

        let l1_ref = l1(&a, &b);
        prop_assert!((kernels::l1(&a, &b) - l1_ref).abs() <= kernel_tolerance(n, l1_ref));

        let norm_ref = norm(&a);
        prop_assert!((kernels::norm(&a) - norm_ref).abs()
            <= kernel_tolerance(n, norm_ref.powi(2)).sqrt());

        // Cosine is scale-free: both implementations clamp into [0, 2].
        let cos_k = kernels::cosine_distance(&a, &b);
        let cos_s = cosine_distance(&a, &b);
        prop_assert!((-1e-9..=2.0 + 1e-9).contains(&cos_k));
        // Tiny norms amplify the quotient's relative error; below the
        // noise floor both values are fuzz around an ill-conditioned
        // angle, so bound the comparison away from it.
        if norm_ref > 1e-3 && norm(&b) > 1e-3 {
            prop_assert!((cos_k - cos_s).abs() <= 1e-3, "cosine {cos_k} vs {cos_s}");
        }
    }

    /// The one-to-many verification kernels agree with a per-candidate
    /// scalar filter: membership may differ only for candidates whose
    /// scalar distance sits inside the kernel accuracy envelope around
    /// the radius, and everything reported is genuinely within the
    /// (fuzzed) radius.
    #[test]
    fn one_to_many_filters_agree_with_scalar_filter(
        flat in vec(-20.0f32..20.0, 64..64 * 40),
        q_seed in vec(-20.0f32..20.0, 16),
        r_frac in 0.05f64..0.95,
    ) {
        let dim = 16;
        let n = flat.len() / dim;
        let flat = &flat[..n * dim];
        let ids: Vec<u32> = (0..n as u32).collect();
        let q: &[f32] = &q_seed;

        // Radius as a quantile of the actual distance distribution so
        // both accept and reject paths are exercised.
        let mut d2: Vec<f64> =
            (0..n).map(|i| l2(&flat[i * dim..(i + 1) * dim], q).powi(2)).collect();
        d2.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let r_sq = d2[((n - 1) as f64 * r_frac) as usize].max(1e-6);

        let mut got = Vec::new();
        kernels::l2_sq_one_to_many(flat, dim, &ids, q, r_sq, &mut got);
        let slack = kernel_tolerance(dim, r_sq.max(1.0));
        let got_set: std::collections::HashSet<u32> = got.iter().copied().collect();
        prop_assert_eq!(got_set.len(), got.len(), "duplicate ids reported");
        for i in 0..n {
            let d = l2(&flat[i * dim..(i + 1) * dim], q).powi(2);
            let reported = got_set.contains(&(i as u32));
            if d <= r_sq - slack {
                prop_assert!(reported, "missed candidate {i}: {d} <= {r_sq}");
            } else if d > r_sq + slack {
                prop_assert!(!reported, "false positive {i}: {d} > {r_sq}");
            }
        }

        let mut d1: Vec<f64> = (0..n).map(|i| l1(&flat[i * dim..(i + 1) * dim], q)).collect();
        d1.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let r = d1[((n - 1) as f64 * r_frac) as usize].max(1e-6);
        let mut got = Vec::new();
        kernels::l1_one_to_many(flat, dim, &ids, q, r, &mut got);
        let slack = kernel_tolerance(dim, r.max(1.0));
        let got_set: std::collections::HashSet<u32> = got.iter().copied().collect();
        for i in 0..n {
            let d = l1(&flat[i * dim..(i + 1) * dim], q);
            let reported = got_set.contains(&(i as u32));
            if d <= r - slack {
                prop_assert!(reported, "missed candidate {i}: {d} <= {r}");
            } else if d > r + slack {
                prop_assert!(!reported, "false positive {i}: {d} > {r}");
            }
        }

        // The full-scan variants must match the gather variants exactly
        // (identical arithmetic, identical order).
        let mut scan = Vec::new();
        kernels::l2_sq_scan(flat, dim, q, r_sq, &mut scan);
        let mut gather = Vec::new();
        kernels::l2_sq_one_to_many(flat, dim, &ids, q, r_sq, &mut gather);
        prop_assert_eq!(scan, gather);
    }

    /// `matvec` rows are bit-identical to the chunked `dot` on every
    /// row (block path and remainder path alike).
    #[test]
    fn matvec_is_bitwise_dot_per_row(
        mat in vec(-10.0f32..10.0, 1..400),
        rows in 1usize..12,
    ) {
        let dim = (mat.len() / rows).max(1);
        let mat = &mat[..dim * (mat.len() / dim).min(rows).max(1)];
        let nrows = mat.len() / dim;
        let x: Vec<f32> = (0..dim).map(|i| ((i * 37) % 17) as f32 - 8.0).collect();
        let mut out = vec![0.0f64; nrows];
        kernels::matvec(mat, dim, &x, &mut out);
        for (j, &v) in out.iter().enumerate() {
            let d = kernels::dot(&mat[j * dim..(j + 1) * dim], &x);
            prop_assert_eq!(v.to_bits(), d.to_bits(), "row {}", j);
        }
    }

    #[test]
    fn libsvm_parser_never_panics(text in "[ -~\\n]{0,300}") {
        // Totality: arbitrary printable input either parses or errors,
        // never panics.
        let _ = hlsh_vec::io::parse_libsvm(text.as_bytes(), 8);
        let _ = hlsh_vec::io::parse_dense(text.as_bytes(), 4);
    }
}
